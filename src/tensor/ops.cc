#include "tensor/ops.h"

#include <algorithm>
#include <cmath>
#include <cstring>

#include "tensor/kernels.h"
#include "util/thread_pool.h"

namespace menos::tensor {
namespace {

using detail::attach_node;
using detail::should_record;

void check_defined(const Tensor& t, const char* op) {
  MENOS_CHECK_MSG(t.defined(), op << ": undefined tensor operand");
}

void check_same_shape(const Tensor& a, const Tensor& b, const char* op) {
  MENOS_CHECK_MSG(a.shape() == b.shape(),
                  op << ": shape mismatch " << shape_to_string(a.shape())
                     << " vs " << shape_to_string(b.shape()));
}

/// New impl sharing `t`'s storage with a different shape (detached view).
Tensor view_as(const Tensor& t, Shape shape) {
  MENOS_CHECK_MSG(numel_of(shape) == t.numel(),
                  "view numel mismatch: " << shape_to_string(shape) << " on "
                                          << shape_to_string(t.shape()));
  return Tensor(std::make_shared<TensorImpl>(t.impl()->storage,
                                             std::move(shape), false));
}

// ----- parallel partitioning helpers -----
//
// Grain sizes are the minimum work (indices / output rows) worth shipping
// to another thread. Work is always partitioned so each output element is
// produced by exactly one chunk with a fixed internal loop order, which is
// what makes results bit-identical for any MENOS_THREADS (docs/PERF.md).

constexpr Index kEwGrain = 1 << 15;    // plain elementwise arithmetic
constexpr Index kMathGrain = 1 << 12;  // exp/tanh-heavy elementwise
constexpr Index kMinChunkFlops = 1 << 18;  // matmul rows per chunk, in flops

Index rows_grain(Index row_len, Index grain = kEwGrain) {
  return std::max<Index>(1, grain / std::max<Index>(row_len, 1));
}

Index mm_grain(Index flops_per_row) {
  return std::max<Index>(1,
                         kMinChunkFlops / std::max<Index>(flops_per_row, 1));
}

// ----- raw matmul cores (row-major, accumulate into C) -----
//
// Each core handles a block of output rows; the public kernels in
// tensor/kernels.h and the batched fan-out in matmul() parallelize over
// these blocks. The contraction index always advances in ascending order
// per output element, so block boundaries never change the arithmetic.

constexpr Index kPanel = 64;  // contraction rows kept hot per pass

// The cores are noinline with __restrict__ operands: every call site (the
// public kernels and the batched fan-out lambdas) shares one copy whose
// inner loops vectorize without runtime alias versioning. Inlining them
// into each std::function body both bloats the lambdas and leaves the hot
// loop's layout to luck.
#if defined(__GNUC__)
#define MENOS_NOINLINE __attribute__((noinline))
#else
#define MENOS_NOINLINE
#endif

// C rows [i0, i1): C[i,j] += sum_p A[i,p] * B[p,j], p ascending. The panel
// loop keeps a kPanel x n slab of B resident while it is reused across
// every row of the block.
MENOS_NOINLINE void mm_rows(const float* __restrict__ a,
                            const float* __restrict__ b, float* __restrict__ c,
                            Index i0, Index i1, Index k, Index n) {
  for (Index p0 = 0; p0 < k; p0 += kPanel) {
    const Index p1 = std::min(k, p0 + kPanel);
    for (Index i = i0; i < i1; ++i) {
      const float* arow = a + i * k;
      float* crow = c + i * n;
      for (Index p = p0; p < p1; ++p) {
        const float av = arow[p];
        const float* brow = b + p * n;
        for (Index j = 0; j < n; ++j) crow[j] += av * brow[j];
      }
    }
  }
}

// Dot product over eight independent lanes combined by a fixed tree. The
// lanes let the compiler vectorize the reduction without relaxed-FP flags;
// the result depends only on the inputs, never on threading.
float dot_fixed(const float* __restrict__ x, const float* __restrict__ y,
                Index n) {
  float lane[8] = {0.0f, 0.0f, 0.0f, 0.0f, 0.0f, 0.0f, 0.0f, 0.0f};
  Index j = 0;
  for (; j + 8 <= n; j += 8) {
    lane[0] += x[j] * y[j];
    lane[1] += x[j + 1] * y[j + 1];
    lane[2] += x[j + 2] * y[j + 2];
    lane[3] += x[j + 3] * y[j + 3];
    lane[4] += x[j + 4] * y[j + 4];
    lane[5] += x[j + 5] * y[j + 5];
    lane[6] += x[j + 6] * y[j + 6];
    lane[7] += x[j + 7] * y[j + 7];
  }
  float acc = ((lane[0] + lane[4]) + (lane[1] + lane[5])) +
              ((lane[2] + lane[6]) + (lane[3] + lane[7]));
  for (; j < n; ++j) acc += x[j] * y[j];
  return acc;
}

// C rows [i0, i1): C[i,p] += dot(A[i,:], B[p,:]).
MENOS_NOINLINE void mm_nt_rows(const float* __restrict__ a,
                               const float* __restrict__ b,
                               float* __restrict__ c, Index i0, Index i1,
                               Index n, Index k) {
  for (Index i = i0; i < i1; ++i) {
    const float* arow = a + i * n;
    float* crow = c + i * k;
    for (Index p = 0; p < k; ++p) crow[p] += dot_fixed(arow, b + p * n, n);
  }
}

// C rows [p0, p1): C[p,j] += sum_i A[i,p] * B[i,j], i ascending. A thread
// owns whole output rows of C, so concurrent blocks never share writes.
MENOS_NOINLINE void mm_tn_cols(const float* __restrict__ a,
                               const float* __restrict__ b,
                               float* __restrict__ c, Index m, Index k,
                               Index n, Index p0, Index p1) {
  for (Index i = 0; i < m; ++i) {
    const float* arow = a + i * k;
    const float* brow = b + i * n;
    for (Index p = p0; p < p1; ++p) {
      const float av = arow[p];
      float* crow = c + p * n;
      for (Index j = 0; j < n; ++j) crow[j] += av * brow[j];
    }
  }
}

}  // namespace

namespace kernels {

void mm(const float* a, const float* b, float* c, Index m, Index k, Index n) {
  util::parallel_for(0, m, mm_grain(2 * k * n), [&](Index lo, Index hi) {
    mm_rows(a, b, c, lo, hi, k, n);
  });
}

void mm_nt(const float* a, const float* b, float* c, Index m, Index n,
           Index k) {
  util::parallel_for(0, m, mm_grain(2 * n * k), [&](Index lo, Index hi) {
    mm_nt_rows(a, b, c, lo, hi, n, k);
  });
}

void mm_tn(const float* a, const float* b, float* c, Index m, Index k,
           Index n) {
  util::parallel_for(0, k, mm_grain(2 * m * n), [&](Index lo, Index hi) {
    mm_tn_cols(a, b, c, m, k, n, lo, hi);
  });
}

}  // namespace kernels

// ----- elementwise -----

Tensor add(const Tensor& a, const Tensor& b) {
  check_defined(a, "add");
  check_defined(b, "add");
  check_same_shape(a, b, "add");
  Tensor out = Tensor::empty(a.shape(), a.device());
  const float* pa = a.data();
  const float* pb = b.data();
  float* po = out.data();
  const Index n = a.numel();
  util::parallel_for(0, n, kEwGrain, [&](Index lo, Index hi) {
    for (Index i = lo; i < hi; ++i) po[i] = pa[i] + pb[i];
  });
  if (should_record({a, b})) {
    attach_node(out, "add", {a, b}, [](const Tensor& g) {
      return std::vector<Tensor>{g, g};
    });
  }
  return out;
}

Tensor sub(const Tensor& a, const Tensor& b) {
  check_defined(a, "sub");
  check_defined(b, "sub");
  check_same_shape(a, b, "sub");
  Tensor out = Tensor::empty(a.shape(), a.device());
  const float* pa = a.data();
  const float* pb = b.data();
  float* po = out.data();
  const Index n = a.numel();
  util::parallel_for(0, n, kEwGrain, [&](Index lo, Index hi) {
    for (Index i = lo; i < hi; ++i) po[i] = pa[i] - pb[i];
  });
  if (should_record({a, b})) {
    attach_node(out, "sub", {a, b}, [](const Tensor& g) {
      return std::vector<Tensor>{g, scale(g, -1.0f)};
    });
  }
  return out;
}

Tensor mul(const Tensor& a, const Tensor& b) {
  check_defined(a, "mul");
  check_defined(b, "mul");
  check_same_shape(a, b, "mul");
  Tensor out = Tensor::empty(a.shape(), a.device());
  const float* pa = a.data();
  const float* pb = b.data();
  float* po = out.data();
  const Index n = a.numel();
  util::parallel_for(0, n, kEwGrain, [&](Index lo, Index hi) {
    for (Index i = lo; i < hi; ++i) po[i] = pa[i] * pb[i];
  });
  if (should_record({a, b})) {
    Tensor sa = a.detach(), sb = b.detach();
    attach_node(out, "mul", {a, b}, [sa, sb](const Tensor& g) {
      return std::vector<Tensor>{mul(g, sb), mul(g, sa)};
    });
  }
  return out;
}

Tensor scale(const Tensor& a, float s) {
  check_defined(a, "scale");
  Tensor out = Tensor::empty(a.shape(), a.device());
  const float* pa = a.data();
  float* po = out.data();
  const Index n = a.numel();
  util::parallel_for(0, n, kEwGrain, [&](Index lo, Index hi) {
    for (Index i = lo; i < hi; ++i) po[i] = pa[i] * s;
  });
  if (should_record({a})) {
    attach_node(out, "scale", {a}, [s](const Tensor& g) {
      return std::vector<Tensor>{scale(g, s)};
    });
  }
  return out;
}

Tensor add_bias(const Tensor& x, const Tensor& bias) {
  check_defined(x, "add_bias");
  check_defined(bias, "add_bias");
  MENOS_CHECK_MSG(bias.ndim() == 1, "add_bias: bias must be 1-D, got "
                                        << shape_to_string(bias.shape()));
  const Index n = bias.dim(0);
  MENOS_CHECK_MSG(x.ndim() >= 1 && x.shape().back() == n,
                  "add_bias: last dim of x " << shape_to_string(x.shape())
                                             << " != bias size " << n);
  Tensor out = Tensor::empty(x.shape(), x.device());
  const Index rows = x.numel() / n;
  const float* px = x.data();
  const float* pb = bias.data();
  float* po = out.data();
  util::parallel_for(0, rows, rows_grain(n), [&](Index lo, Index hi) {
    for (Index r = lo; r < hi; ++r) {
      const float* xr = px + r * n;
      float* orow = po + r * n;
      for (Index j = 0; j < n; ++j) orow[j] = xr[j] + pb[j];
    }
  });
  if (should_record({x, bias})) {
    attach_node(out, "add_bias", {x, bias}, [n, rows](const Tensor& g) {
      Tensor db = Tensor::zeros({n}, g.device());
      const float* pg = g.data();
      float* pdb = db.data();
      // Column-partitioned reduction: each thread owns a block of bias
      // columns and sweeps rows in ascending order, so every pdb[j] sees
      // the same addition order at any thread count.
      util::parallel_for(0, n, rows_grain(rows), [&](Index j0, Index j1) {
        for (Index r = 0; r < rows; ++r) {
          const float* grow = pg + r * n;
          for (Index j = j0; j < j1; ++j) pdb[j] += grow[j];
        }
      });
      return std::vector<Tensor>{g, db};
    });
  }
  return out;
}

Tensor relu(const Tensor& a) {
  check_defined(a, "relu");
  Tensor out = Tensor::empty(a.shape(), a.device());
  const float* pa = a.data();
  float* po = out.data();
  const Index n = a.numel();
  util::parallel_for(0, n, kEwGrain, [&](Index lo, Index hi) {
    for (Index i = lo; i < hi; ++i) po[i] = pa[i] > 0.0f ? pa[i] : 0.0f;
  });
  if (should_record({a})) {
    Tensor sa = a.detach();
    attach_node(out, "relu", {a}, [sa](const Tensor& g) {
      Tensor dx = Tensor::empty(g.shape(), g.device());
      const float* px = sa.data();
      const float* pg = g.data();
      float* pd = dx.data();
      const Index m = g.numel();
      util::parallel_for(0, m, kEwGrain, [&](Index lo, Index hi) {
        for (Index i = lo; i < hi; ++i) pd[i] = px[i] > 0.0f ? pg[i] : 0.0f;
      });
      return std::vector<Tensor>{dx};
    });
  }
  return out;
}

namespace {
constexpr float kGeluC = 0.7978845608028654f;  // sqrt(2/pi)
constexpr float kGeluA = 0.044715f;
}  // namespace

Tensor gelu(const Tensor& a) {
  check_defined(a, "gelu");
  Tensor out = Tensor::empty(a.shape(), a.device());
  const float* pa = a.data();
  float* po = out.data();
  const Index n = a.numel();
  util::parallel_for(0, n, kMathGrain, [&](Index lo, Index hi) {
    for (Index i = lo; i < hi; ++i) {
      const float x = pa[i];
      const float t = std::tanh(kGeluC * (x + kGeluA * x * x * x));
      po[i] = 0.5f * x * (1.0f + t);
    }
  });
  if (should_record({a})) {
    Tensor sa = a.detach();
    attach_node(out, "gelu", {a}, [sa](const Tensor& g) {
      Tensor dx = Tensor::empty(g.shape(), g.device());
      const float* px = sa.data();
      const float* pg = g.data();
      float* pd = dx.data();
      const Index m = g.numel();
      util::parallel_for(0, m, kMathGrain, [&](Index lo, Index hi) {
        for (Index i = lo; i < hi; ++i) {
          const float x = px[i];
          const float u = kGeluC * (x + kGeluA * x * x * x);
          const float t = std::tanh(u);
          const float du = kGeluC * (1.0f + 3.0f * kGeluA * x * x);
          const float d = 0.5f * (1.0f + t) + 0.5f * x * (1.0f - t * t) * du;
          pd[i] = pg[i] * d;
        }
      });
      return std::vector<Tensor>{dx};
    });
  }
  return out;
}

Tensor silu(const Tensor& a) {
  check_defined(a, "silu");
  Tensor out = Tensor::empty(a.shape(), a.device());
  const float* pa = a.data();
  float* po = out.data();
  const Index n = a.numel();
  util::parallel_for(0, n, kMathGrain, [&](Index lo, Index hi) {
    for (Index i = lo; i < hi; ++i) {
      const float x = pa[i];
      const float s = 1.0f / (1.0f + std::exp(-x));
      po[i] = x * s;
    }
  });
  if (should_record({a})) {
    Tensor sa = a.detach();
    attach_node(out, "silu", {a}, [sa](const Tensor& g) {
      Tensor dx = Tensor::empty(g.shape(), g.device());
      const float* px = sa.data();
      const float* pg = g.data();
      float* pd = dx.data();
      const Index m = g.numel();
      util::parallel_for(0, m, kMathGrain, [&](Index lo, Index hi) {
        for (Index i = lo; i < hi; ++i) {
          const float x = px[i];
          const float s = 1.0f / (1.0f + std::exp(-x));
          pd[i] = pg[i] * s * (1.0f + x * (1.0f - s));
        }
      });
      return std::vector<Tensor>{dx};
    });
  }
  return out;
}

Tensor dropout(const Tensor& a, float p, util::Rng& rng) {
  check_defined(a, "dropout");
  MENOS_CHECK_MSG(p >= 0.0f && p < 1.0f,
                  "dropout probability must be in [0, 1), got " << p);
  if (p == 0.0f) return a;
  const float keep_scale = 1.0f / (1.0f - p);
  Tensor out = Tensor::empty(a.shape(), a.device());
  // The mask is saved (as keep_scale or 0 per element) for backward.
  Tensor mask = Tensor::empty(a.shape(), a.device());
  const float* pa = a.data();
  float* po = out.data();
  float* pm = mask.data();
  const Index n = a.numel();
  for (Index i = 0; i < n; ++i) {
    const bool keep = rng.next_double() >= static_cast<double>(p);
    pm[i] = keep ? keep_scale : 0.0f;
    po[i] = pa[i] * pm[i];
  }
  if (should_record({a})) {
    attach_node(out, "dropout", {a}, [mask](const Tensor& g) {
      return std::vector<Tensor>{mul(g, mask)};
    });
  }
  return out;
}

// ----- shape manipulation -----

Tensor reshape(const Tensor& a, Shape new_shape) {
  check_defined(a, "reshape");
  Tensor out = view_as(a, std::move(new_shape));
  if (should_record({a})) {
    const Shape original = a.shape();
    attach_node(out, "reshape", {a}, [original](const Tensor& g) {
      return std::vector<Tensor>{view_as(g, original)};
    });
  }
  return out;
}

namespace {

/// Raw permutation copy: out[perm(index)] = in[index].
Tensor permute_copy(const Tensor& a, const std::vector<int>& dims) {
  const Shape& in_shape = a.shape();
  const int nd = a.ndim();
  Shape out_shape(static_cast<std::size_t>(nd));
  for (int i = 0; i < nd; ++i) {
    out_shape[static_cast<std::size_t>(i)] =
        in_shape[static_cast<std::size_t>(dims[static_cast<std::size_t>(i)])];
  }
  Tensor out = Tensor::empty(out_shape, a.device());

  // Strides (row-major).
  std::vector<Index> in_strides(static_cast<std::size_t>(nd), 1);
  std::vector<Index> out_strides(static_cast<std::size_t>(nd), 1);
  for (int i = nd - 2; i >= 0; --i) {
    in_strides[static_cast<std::size_t>(i)] =
        in_strides[static_cast<std::size_t>(i + 1)] *
        in_shape[static_cast<std::size_t>(i + 1)];
    out_strides[static_cast<std::size_t>(i)] =
        out_strides[static_cast<std::size_t>(i + 1)] *
        out_shape[static_cast<std::size_t>(i + 1)];
  }

  const float* pin = a.data();
  float* pout = out.data();
  const Index total = a.numel();
  std::vector<Index> idx(static_cast<std::size_t>(nd), 0);
  for (Index flat = 0; flat < total; ++flat) {
    // Decompose flat input index -> coordinates.
    Index rem = flat;
    for (int i = 0; i < nd; ++i) {
      idx[static_cast<std::size_t>(i)] =
          rem / in_strides[static_cast<std::size_t>(i)];
      rem %= in_strides[static_cast<std::size_t>(i)];
    }
    Index out_flat = 0;
    for (int i = 0; i < nd; ++i) {
      out_flat += idx[static_cast<std::size_t>(dims[static_cast<std::size_t>(i)])] *
                  out_strides[static_cast<std::size_t>(i)];
    }
    pout[out_flat] = pin[flat];
  }
  return out;
}

}  // namespace

Tensor permute(const Tensor& a, const std::vector<int>& dims) {
  check_defined(a, "permute");
  MENOS_CHECK_MSG(static_cast<int>(dims.size()) == a.ndim(),
                  "permute: axis list size " << dims.size() << " != ndim "
                                             << a.ndim());
  std::vector<bool> seen(dims.size(), false);
  for (int d : dims) {
    MENOS_CHECK_MSG(d >= 0 && d < a.ndim() && !seen[static_cast<std::size_t>(d)],
                    "permute: invalid axis permutation");
    seen[static_cast<std::size_t>(d)] = true;
  }
  Tensor out = permute_copy(a, dims);
  if (should_record({a})) {
    std::vector<int> inverse(dims.size());
    for (std::size_t i = 0; i < dims.size(); ++i) {
      inverse[static_cast<std::size_t>(dims[i])] = static_cast<int>(i);
    }
    attach_node(out, "permute", {a}, [inverse](const Tensor& g) {
      return std::vector<Tensor>{permute_copy(g, inverse)};
    });
  }
  return out;
}

Tensor transpose_last(const Tensor& a) {
  check_defined(a, "transpose_last");
  MENOS_CHECK_MSG(a.ndim() >= 2, "transpose_last needs ndim >= 2");
  std::vector<int> dims(static_cast<std::size_t>(a.ndim()));
  for (int i = 0; i < a.ndim(); ++i) dims[static_cast<std::size_t>(i)] = i;
  std::swap(dims[static_cast<std::size_t>(a.ndim() - 1)],
            dims[static_cast<std::size_t>(a.ndim() - 2)]);
  return permute(a, dims);
}

Tensor concat_dim1(const Tensor& a, const Tensor& b) {
  check_defined(a, "concat_dim1");
  check_defined(b, "concat_dim1");
  MENOS_CHECK_MSG(a.ndim() == 3 && b.ndim() == 3,
                  "concat_dim1 expects 3-D tensors");
  MENOS_CHECK_MSG(a.dim(0) == b.dim(0) && a.dim(2) == b.dim(2),
                  "concat_dim1: incompatible shapes "
                      << shape_to_string(a.shape()) << " and "
                      << shape_to_string(b.shape()));
  const Index B = a.dim(0), Ta = a.dim(1), Tb = b.dim(1), C = a.dim(2);
  Tensor out = Tensor::empty({B, Ta + Tb, C}, a.device());
  const float* pa = a.data();
  const float* pb = b.data();
  float* po = out.data();
  for (Index i = 0; i < B; ++i) {
    std::memcpy(po + i * (Ta + Tb) * C, pa + i * Ta * C,
                static_cast<std::size_t>(Ta * C) * sizeof(float));
    std::memcpy(po + (i * (Ta + Tb) + Ta) * C, pb + i * Tb * C,
                static_cast<std::size_t>(Tb * C) * sizeof(float));
  }
  if (should_record({a, b})) {
    attach_node(out, "concat_dim1", {a, b}, [B, Ta, Tb, C](const Tensor& g) {
      Tensor ga = Tensor::empty({B, Ta, C}, g.device());
      Tensor gb = Tensor::empty({B, Tb, C}, g.device());
      const float* pg = g.data();
      for (Index i = 0; i < B; ++i) {
        std::memcpy(ga.data() + i * Ta * C, pg + i * (Ta + Tb) * C,
                    static_cast<std::size_t>(Ta * C) * sizeof(float));
        std::memcpy(gb.data() + i * Tb * C, pg + (i * (Ta + Tb) + Ta) * C,
                    static_cast<std::size_t>(Tb * C) * sizeof(float));
      }
      return std::vector<Tensor>{ga, gb};
    });
  }
  return out;
}

Tensor slice_dim1(const Tensor& a, Index start, Index len) {
  check_defined(a, "slice_dim1");
  MENOS_CHECK_MSG(a.ndim() == 3, "slice_dim1 expects a 3-D tensor");
  const Index B = a.dim(0), T = a.dim(1), C = a.dim(2);
  MENOS_CHECK_MSG(start >= 0 && len >= 0 && start + len <= T,
                  "slice_dim1: range [" << start << ", " << start + len
                                        << ") out of bounds for T=" << T);
  Tensor out = Tensor::empty({B, len, C}, a.device());
  const float* pa = a.data();
  float* po = out.data();
  for (Index i = 0; i < B; ++i) {
    std::memcpy(po + i * len * C, pa + (i * T + start) * C,
                static_cast<std::size_t>(len * C) * sizeof(float));
  }
  if (should_record({a})) {
    attach_node(out, "slice_dim1", {a}, [B, T, C, start, len](const Tensor& g) {
      Tensor gx = Tensor::zeros({B, T, C}, g.device());
      const float* pg = g.data();
      for (Index i = 0; i < B; ++i) {
        std::memcpy(gx.data() + (i * T + start) * C, pg + i * len * C,
                    static_cast<std::size_t>(len * C) * sizeof(float));
      }
      return std::vector<Tensor>{gx};
    });
  }
  return out;
}

// ----- contractions -----

Tensor matmul(const Tensor& a, const Tensor& b) {
  check_defined(a, "matmul");
  check_defined(b, "matmul");
  MENOS_CHECK_MSG(a.ndim() >= 2 && b.ndim() >= 2,
                  "matmul operands need ndim >= 2");
  const Shape& sa = a.shape();
  const Shape& sb = b.shape();
  const Index m = sa[sa.size() - 2];
  const Index k = sa[sa.size() - 1];
  const bool shared_b = b.ndim() == 2;
  if (shared_b) {
    MENOS_CHECK_MSG(sb[0] == k, "matmul: inner dims " << k << " vs " << sb[0]);
  } else {
    MENOS_CHECK_MSG(a.ndim() == b.ndim(),
                    "matmul: batched operands must have equal ndim");
    for (std::size_t i = 0; i + 2 < sa.size(); ++i) {
      MENOS_CHECK_MSG(sa[i] == sb[i], "matmul: batch dims mismatch at axis "
                                          << i << ": " << sa[i] << " vs "
                                          << sb[i]);
    }
    MENOS_CHECK_MSG(sb[sb.size() - 2] == k,
                    "matmul: inner dims " << k << " vs " << sb[sb.size() - 2]);
  }
  const Index n = sb[sb.size() - 1];
  const Index batch = a.numel() / (m * k);

  Shape out_shape(sa.begin(), sa.end() - 2);
  out_shape.push_back(m);
  out_shape.push_back(n);
  Tensor out = Tensor::zeros(out_shape, a.device());

  const float* pa = a.data();
  const float* pb = b.data();
  float* po = out.data();
  // Fan out across batch * m output rows as one index space, so small
  // per-matrix row counts still saturate the pool when the batch is deep.
  util::parallel_for(
      0, batch * m, mm_grain(2 * k * n), [&](Index r0, Index r1) {
        Index r = r0;
        while (r < r1) {
          const Index bi = r / m;
          const Index i0 = r - bi * m;
          const Index i1 = std::min(m, i0 + (r1 - r));
          const float* bmat = shared_b ? pb : pb + bi * k * n;
          mm_rows(pa + bi * m * k, bmat, po + bi * m * n, i0, i1, k, n);
          r += i1 - i0;
        }
      });

  if (should_record({a, b})) {
    Tensor saved_a = a.detach();
    Tensor saved_b = b.detach();
    attach_node(out, "matmul", {a, b},
                [saved_a, saved_b, m, k, n, batch, shared_b](const Tensor& g) {
                  Tensor da = Tensor::zeros(saved_a.shape(), g.device());
                  Tensor db = Tensor::zeros(saved_b.shape(), g.device());
                  const float* pg = g.data();
                  const float* pa2 = saved_a.data();
                  const float* pb2 = saved_b.data();
                  float* pda = da.data();
                  float* pdb = db.data();
                  // dA_i = dC_i * B_i^T: rows of dA are independent across
                  // the whole batch, so fan out over batch * m rows.
                  util::parallel_for(
                      0, batch * m, mm_grain(2 * n * k),
                      [&](Index r0, Index r1) {
                        Index r = r0;
                        while (r < r1) {
                          const Index bi = r / m;
                          const Index i0 = r - bi * m;
                          const Index i1 = std::min(m, i0 + (r1 - r));
                          const float* bmat =
                              shared_b ? pb2 : pb2 + bi * k * n;
                          mm_nt_rows(pg + bi * m * n, bmat,
                                     pda + bi * m * k, i0, i1, n, k);
                          r += i1 - i0;
                        }
                      });
                  // dB (+)= A_i^T * dC_i.
                  if (shared_b) {
                    // Every batch accumulates into the same dB, so keep the
                    // batch loop serial (fixed order) and parallelize over
                    // dB's rows inside each contraction.
                    for (Index i = 0; i < batch; ++i) {
                      kernels::mm_tn(pa2 + i * m * k, pg + i * m * n, pdb, m,
                                     k, n);
                    }
                  } else {
                    util::parallel_for(
                        0, batch * k, mm_grain(2 * m * n),
                        [&](Index r0, Index r1) {
                          Index r = r0;
                          while (r < r1) {
                            const Index bi = r / k;
                            const Index p0 = r - bi * k;
                            const Index p1 = std::min(k, p0 + (r1 - r));
                            mm_tn_cols(pa2 + bi * m * k, pg + bi * m * n,
                                       pdb + bi * k * n, m, k, n, p0, p1);
                            r += p1 - p0;
                          }
                        });
                  }
                  return std::vector<Tensor>{da, db};
                });
  }
  return out;
}

// ----- reductions / normalization -----

Tensor sum(const Tensor& a) {
  check_defined(a, "sum");
  double acc = 0.0;
  const float* pa = a.data();
  const Index n = a.numel();
  for (Index i = 0; i < n; ++i) acc += pa[i];
  Tensor out = Tensor::scalar(static_cast<float>(acc), a.device());
  if (should_record({a})) {
    const Shape in_shape = a.shape();
    attach_node(out, "sum", {a}, [in_shape](const Tensor& g) {
      return std::vector<Tensor>{
          Tensor::full(in_shape, g.item(), g.device())};
    });
  }
  return out;
}

Tensor mean(const Tensor& a) {
  check_defined(a, "mean");
  MENOS_CHECK_MSG(a.numel() > 0, "mean of empty tensor");
  const float inv = 1.0f / static_cast<float>(a.numel());
  return scale(sum(a), inv);
}

namespace {

/// Shared softmax backward: ds = y * (dy - sum_j dy_j * y_j) per row.
std::vector<Tensor> softmax_backward(const Tensor& y, const Tensor& g,
                                     Index row_len) {
  Tensor dx = Tensor::empty(g.shape(), g.device());
  const Index rows = g.numel() / row_len;
  const float* py = y.data();
  const float* pg = g.data();
  float* pd = dx.data();
  util::parallel_for(0, rows, rows_grain(row_len), [&](Index lo, Index hi) {
    for (Index r = lo; r < hi; ++r) {
      const float* yr = py + r * row_len;
      const float* gr = pg + r * row_len;
      float* dr = pd + r * row_len;
      float dot = 0.0f;
      for (Index j = 0; j < row_len; ++j) dot += yr[j] * gr[j];
      for (Index j = 0; j < row_len; ++j) dr[j] = yr[j] * (gr[j] - dot);
    }
  });
  return {dx};
}

}  // namespace

Tensor softmax_lastdim(const Tensor& a) {
  check_defined(a, "softmax");
  MENOS_CHECK_MSG(a.ndim() >= 1, "softmax needs ndim >= 1");
  const Index n = a.shape().back();
  const Index rows = a.numel() / n;
  Tensor out = Tensor::empty(a.shape(), a.device());
  const float* pa = a.data();
  float* po = out.data();
  util::parallel_for(0, rows, rows_grain(n, kMathGrain),
                     [&](Index lo, Index hi) {
    for (Index r = lo; r < hi; ++r) {
      const float* xr = pa + r * n;
      float* yr = po + r * n;
      float mx = xr[0];
      for (Index j = 1; j < n; ++j) mx = std::max(mx, xr[j]);
      float z = 0.0f;
      for (Index j = 0; j < n; ++j) {
        yr[j] = std::exp(xr[j] - mx);
        z += yr[j];
      }
      const float inv = 1.0f / z;
      for (Index j = 0; j < n; ++j) yr[j] *= inv;
    }
  });
  if (should_record({a})) {
    Tensor saved_y = out.detach();
    attach_node(out, "softmax", {a}, [saved_y, n](const Tensor& g) {
      return softmax_backward(saved_y, g, n);
    });
  }
  return out;
}

Tensor causal_masked_softmax(const Tensor& scores) {
  check_defined(scores, "causal_masked_softmax");
  MENOS_CHECK_MSG(scores.ndim() >= 2, "causal softmax needs ndim >= 2");
  const Index t_cols = scores.shape().back();
  const Index t_rows = scores.shape()[scores.shape().size() - 2];
  MENOS_CHECK_MSG(t_rows == t_cols,
                  "causal softmax expects square score blocks, got "
                      << shape_to_string(scores.shape()));
  const Index blocks = scores.numel() / (t_rows * t_cols);
  Tensor out = Tensor::empty(scores.shape(), scores.device());
  const float* pa = scores.data();
  float* po = out.data();
  util::parallel_for(0, blocks * t_rows, rows_grain(t_cols, kMathGrain),
                     [&](Index lo, Index hi) {
    for (Index row = lo; row < hi; ++row) {
      const Index t = row % t_rows;
      const float* xr = pa + row * t_cols;
      float* yr = po + row * t_cols;
      const Index valid = t + 1;  // positions 0..t
      float mx = xr[0];
      for (Index j = 1; j < valid; ++j) mx = std::max(mx, xr[j]);
      float z = 0.0f;
      for (Index j = 0; j < valid; ++j) {
        yr[j] = std::exp(xr[j] - mx);
        z += yr[j];
      }
      const float inv = 1.0f / z;
      for (Index j = 0; j < valid; ++j) yr[j] *= inv;
      for (Index j = valid; j < t_cols; ++j) yr[j] = 0.0f;
    }
  });
  if (should_record({scores})) {
    Tensor saved_y = out.detach();
    attach_node(out, "causal_softmax", {scores},
                [saved_y, t_cols](const Tensor& g) {
                  // Masked positions have y == 0, so the generic softmax
                  // backward already yields zero gradient there.
                  return softmax_backward(saved_y, g, t_cols);
                });
  }
  return out;
}

Tensor layer_norm(const Tensor& x, const Tensor& gamma, const Tensor& beta,
                  float eps) {
  check_defined(x, "layer_norm");
  check_defined(gamma, "layer_norm");
  check_defined(beta, "layer_norm");
  MENOS_CHECK_MSG(gamma.ndim() == 1 && beta.ndim() == 1,
                  "layer_norm: gamma/beta must be 1-D");
  const Index n = x.shape().back();
  MENOS_CHECK_MSG(gamma.dim(0) == n && beta.dim(0) == n,
                  "layer_norm: param size mismatch");
  const Index rows = x.numel() / n;
  Tensor out = Tensor::empty(x.shape(), x.device());
  // Saved for backward: normalized activations and per-row 1/sigma.
  Tensor xhat = Tensor::empty(x.shape(), x.device());
  Tensor inv_sigma = Tensor::empty({rows}, x.device());

  const float* px = x.data();
  const float* pg = gamma.data();
  const float* pb = beta.data();
  float* po = out.data();
  float* ph = xhat.data();
  float* pis = inv_sigma.data();
  util::parallel_for(0, rows, rows_grain(n), [&](Index lo, Index hi) {
    for (Index r = lo; r < hi; ++r) {
      const float* xr = px + r * n;
      float mu = 0.0f;
      for (Index j = 0; j < n; ++j) mu += xr[j];
      mu /= static_cast<float>(n);
      float var = 0.0f;
      for (Index j = 0; j < n; ++j) {
        const float d = xr[j] - mu;
        var += d * d;
      }
      var /= static_cast<float>(n);
      const float is = 1.0f / std::sqrt(var + eps);
      pis[r] = is;
      float* hr = ph + r * n;
      float* orow = po + r * n;
      for (Index j = 0; j < n; ++j) {
        hr[j] = (xr[j] - mu) * is;
        orow[j] = hr[j] * pg[j] + pb[j];
      }
    }
  });

  if (should_record({x, gamma, beta})) {
    Tensor sg = gamma.detach();
    attach_node(out, "layer_norm", {x, gamma, beta},
                [xhat, inv_sigma, sg, n, rows](const Tensor& g) {
                  Tensor dx = Tensor::empty(g.shape(), g.device());
                  Tensor dgamma = Tensor::zeros({n}, g.device());
                  Tensor dbeta = Tensor::zeros({n}, g.device());
                  const float* ph2 = xhat.data();
                  const float* pis2 = inv_sigma.data();
                  const float* pgam = sg.data();
                  const float* pgr = g.data();
                  float* pdx = dx.data();
                  float* pdg = dgamma.data();
                  float* pdb = dbeta.data();
                  // Pass 1 (rows): dx, which only needs per-row statistics.
                  util::parallel_for(
                      0, rows, rows_grain(n), [&](Index lo, Index hi) {
                        for (Index r = lo; r < hi; ++r) {
                          const float* hr = ph2 + r * n;
                          const float* gr = pgr + r * n;
                          float* dxr = pdx + r * n;
                          float mean_gy = 0.0f, mean_gyh = 0.0f;
                          for (Index j = 0; j < n; ++j) {
                            const float gy = gr[j] * pgam[j];
                            mean_gy += gy;
                            mean_gyh += gy * hr[j];
                          }
                          mean_gy /= static_cast<float>(n);
                          mean_gyh /= static_cast<float>(n);
                          const float is = pis2[r];
                          for (Index j = 0; j < n; ++j) {
                            const float gy = gr[j] * pgam[j];
                            dxr[j] = is * (gy - mean_gy - hr[j] * mean_gyh);
                          }
                        }
                      });
                  // Pass 2 (columns): dgamma/dbeta. Each thread owns a
                  // column block and sweeps rows in ascending order, so the
                  // reduction order per parameter is thread-count invariant.
                  util::parallel_for(
                      0, n, rows_grain(rows), [&](Index j0, Index j1) {
                        for (Index r = 0; r < rows; ++r) {
                          const float* hr = ph2 + r * n;
                          const float* gr = pgr + r * n;
                          for (Index j = j0; j < j1; ++j) {
                            pdg[j] += gr[j] * hr[j];
                            pdb[j] += gr[j];
                          }
                        }
                      });
                  return std::vector<Tensor>{dx, dgamma, dbeta};
                });
  }
  return out;
}

Tensor rms_norm(const Tensor& x, const Tensor& gamma, float eps) {
  check_defined(x, "rms_norm");
  check_defined(gamma, "rms_norm");
  MENOS_CHECK_MSG(gamma.ndim() == 1, "rms_norm: gamma must be 1-D");
  const Index n = x.shape().back();
  MENOS_CHECK_MSG(gamma.dim(0) == n, "rms_norm: gamma size mismatch");
  const Index rows = x.numel() / n;
  Tensor out = Tensor::empty(x.shape(), x.device());
  Tensor xhat = Tensor::empty(x.shape(), x.device());
  Tensor inv_rms = Tensor::empty({rows}, x.device());

  const float* px = x.data();
  const float* pg = gamma.data();
  float* po = out.data();
  float* ph = xhat.data();
  float* pir = inv_rms.data();
  util::parallel_for(0, rows, rows_grain(n), [&](Index lo, Index hi) {
    for (Index r = lo; r < hi; ++r) {
      const float* xr = px + r * n;
      float ms = 0.0f;
      for (Index j = 0; j < n; ++j) ms += xr[j] * xr[j];
      ms /= static_cast<float>(n);
      const float ir = 1.0f / std::sqrt(ms + eps);
      pir[r] = ir;
      float* hr = ph + r * n;
      float* orow = po + r * n;
      for (Index j = 0; j < n; ++j) {
        hr[j] = xr[j] * ir;
        orow[j] = hr[j] * pg[j];
      }
    }
  });

  if (should_record({x, gamma})) {
    Tensor sg = gamma.detach();
    attach_node(out, "rms_norm", {x, gamma},
                [xhat, inv_rms, sg, n, rows](const Tensor& g) {
                  Tensor dx = Tensor::empty(g.shape(), g.device());
                  Tensor dgamma = Tensor::zeros({n}, g.device());
                  const float* ph2 = xhat.data();
                  const float* pir2 = inv_rms.data();
                  const float* pgam = sg.data();
                  const float* pgr = g.data();
                  float* pdx = dx.data();
                  float* pdg = dgamma.data();
                  util::parallel_for(
                      0, rows, rows_grain(n), [&](Index lo, Index hi) {
                        for (Index r = lo; r < hi; ++r) {
                          const float* hr = ph2 + r * n;
                          const float* gr = pgr + r * n;
                          float* dxr = pdx + r * n;
                          float mean_gh = 0.0f;
                          for (Index j = 0; j < n; ++j) {
                            mean_gh += gr[j] * pgam[j] * hr[j];
                          }
                          mean_gh /= static_cast<float>(n);
                          const float ir = pir2[r];
                          for (Index j = 0; j < n; ++j) {
                            const float gy = gr[j] * pgam[j];
                            dxr[j] = ir * (gy - hr[j] * mean_gh);
                          }
                        }
                      });
                  util::parallel_for(
                      0, n, rows_grain(rows), [&](Index j0, Index j1) {
                        for (Index r = 0; r < rows; ++r) {
                          const float* hr = ph2 + r * n;
                          const float* gr = pgr + r * n;
                          for (Index j = j0; j < j1; ++j) {
                            pdg[j] += gr[j] * hr[j];
                          }
                        }
                      });
                  return std::vector<Tensor>{dx, dgamma};
                });
  }
  return out;
}

// ----- token ops -----

Tensor embedding(const Tensor& weight, const std::vector<std::int32_t>& ids,
                 Index batch, Index seq) {
  check_defined(weight, "embedding");
  MENOS_CHECK_MSG(weight.ndim() == 2, "embedding: weight must be [V, D]");
  MENOS_CHECK_MSG(static_cast<Index>(ids.size()) == batch * seq,
                  "embedding: ids size " << ids.size() << " != batch*seq "
                                         << batch * seq);
  const Index vocab = weight.dim(0);
  const Index dim = weight.dim(1);
  for (std::int32_t id : ids) {
    MENOS_CHECK_MSG(id >= 0 && id < vocab,
                    "embedding: id " << id << " outside vocab " << vocab);
  }
  Tensor out = Tensor::empty({batch, seq, dim}, weight.device());
  const float* pw = weight.data();
  float* po = out.data();
  util::parallel_for(0, batch * seq, rows_grain(dim),
                     [&](Index lo, Index hi) {
    for (Index i = lo; i < hi; ++i) {
      std::memcpy(po + i * dim,
                  pw + static_cast<Index>(ids[static_cast<std::size_t>(i)]) *
                           dim,
                  static_cast<std::size_t>(dim) * sizeof(float));
    }
  });
  if (should_record({weight})) {
    attach_node(out, "embedding", {weight},
                [ids, vocab, dim, batch, seq](const Tensor& g) {
                  Tensor dw = Tensor::zeros({vocab, dim}, g.device());
                  const float* pg = g.data();
                  float* pdw = dw.data();
                  for (Index i = 0; i < batch * seq; ++i) {
                    float* row = pdw + static_cast<Index>(
                                           ids[static_cast<std::size_t>(i)]) *
                                           dim;
                    const float* grow = pg + i * dim;
                    for (Index j = 0; j < dim; ++j) row[j] += grow[j];
                  }
                  return std::vector<Tensor>{dw};
                });
  }
  return out;
}

Tensor cross_entropy(const Tensor& logits,
                     const std::vector<std::int32_t>& targets,
                     std::int32_t ignore_index) {
  check_defined(logits, "cross_entropy");
  MENOS_CHECK_MSG(logits.ndim() == 2, "cross_entropy: logits must be [N, V]");
  const Index rows = logits.dim(0);
  const Index vocab = logits.dim(1);
  MENOS_CHECK_MSG(static_cast<Index>(targets.size()) == rows,
                  "cross_entropy: target count " << targets.size()
                                                 << " != rows " << rows);

  // Probabilities are saved for backward (grad = probs - onehot).
  Tensor probs = Tensor::empty(logits.shape(), logits.device());
  const float* pl = logits.data();
  float* pp = probs.data();
  // Rows are independent: probabilities and per-row losses are computed in
  // parallel, then the scalar loss is reduced serially in ascending row
  // order so the (double) accumulation order never depends on threading.
  std::vector<double> row_loss(static_cast<std::size_t>(rows), 0.0);
  util::parallel_for(0, rows, rows_grain(vocab, kMathGrain),
                     [&](Index lo, Index hi) {
    for (Index r = lo; r < hi; ++r) {
      const float* xr = pl + r * vocab;
      float* pr = pp + r * vocab;
      float mx = xr[0];
      for (Index j = 1; j < vocab; ++j) mx = std::max(mx, xr[j]);
      double z = 0.0;
      for (Index j = 0; j < vocab; ++j)
        z += std::exp(static_cast<double>(xr[j] - mx));
      const double lse = mx + std::log(z);
      for (Index j = 0; j < vocab; ++j) {
        pr[j] = static_cast<float>(std::exp(static_cast<double>(xr[j]) - lse));
      }
      const std::int32_t t = targets[static_cast<std::size_t>(r)];
      if (t == ignore_index) continue;
      MENOS_CHECK_MSG(t >= 0 && t < vocab,
                      "cross_entropy: target " << t << " outside vocab "
                                               << vocab);
      row_loss[static_cast<std::size_t>(r)] = lse - static_cast<double>(xr[t]);
    }
  });
  double loss_acc = 0.0;
  Index counted = 0;
  for (Index r = 0; r < rows; ++r) {
    if (targets[static_cast<std::size_t>(r)] == ignore_index) continue;
    loss_acc += row_loss[static_cast<std::size_t>(r)];
    ++counted;
  }
  MENOS_CHECK_MSG(counted > 0, "cross_entropy: all targets ignored");
  Tensor out = Tensor::scalar(
      static_cast<float>(loss_acc / static_cast<double>(counted)),
      logits.device());

  if (should_record({logits})) {
    attach_node(out, "cross_entropy", {logits},
                [probs, targets, rows, vocab, ignore_index,
                 counted](const Tensor& g) {
                  const float go = g.item();
                  Tensor dl = Tensor::empty({rows, vocab}, g.device());
                  const float* pp2 = probs.data();
                  float* pd = dl.data();
                  const float inv = go / static_cast<float>(counted);
                  util::parallel_for(
                      0, rows, rows_grain(vocab), [&](Index lo, Index hi) {
                        for (Index r = lo; r < hi; ++r) {
                          const std::int32_t t =
                              targets[static_cast<std::size_t>(r)];
                          float* dr = pd + r * vocab;
                          if (t == ignore_index) {
                            std::memset(dr, 0,
                                        static_cast<std::size_t>(vocab) *
                                            sizeof(float));
                            continue;
                          }
                          const float* pr = pp2 + r * vocab;
                          for (Index j = 0; j < vocab; ++j)
                            dr[j] = pr[j] * inv;
                          dr[t] -= inv;
                        }
                      });
                  return std::vector<Tensor>{dl};
                });
  }
  return out;
}

Tensor to_device(const Tensor& a, gpusim::Device& device) {
  check_defined(a, "to_device");
  Tensor out = Tensor::empty(a.shape(), device);
  std::memcpy(out.data(), a.data(), a.bytes());
  if (should_record({a})) {
    gpusim::Device* source = &a.device();
    attach_node(out, "to_device", {a}, [source](const Tensor& g) {
      Tensor back = Tensor::empty(g.shape(), *source);
      std::memcpy(back.data(), g.data(), g.bytes());
      return std::vector<Tensor>{back};
    });
  }
  return out;
}

std::vector<std::int32_t> argmax_lastdim(const Tensor& a) {
  check_defined(a, "argmax_lastdim");
  MENOS_CHECK_MSG(a.ndim() >= 1 && a.shape().back() > 0,
                  "argmax needs a non-empty last dimension");
  const Index n = a.shape().back();
  const Index rows = a.numel() / n;
  std::vector<std::int32_t> out(static_cast<std::size_t>(rows));
  const float* p = a.data();
  for (Index r = 0; r < rows; ++r) {
    const float* row = p + r * n;
    Index best = 0;
    for (Index j = 1; j < n; ++j) {
      if (row[j] > row[best]) best = j;
    }
    out[static_cast<std::size_t>(r)] = static_cast<std::int32_t>(best);
  }
  return out;
}

}  // namespace menos::tensor
