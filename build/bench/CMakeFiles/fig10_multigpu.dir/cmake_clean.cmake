file(REMOVE_RECURSE
  "CMakeFiles/fig10_multigpu.dir/fig10_multigpu.cc.o"
  "CMakeFiles/fig10_multigpu.dir/fig10_multigpu.cc.o.d"
  "fig10_multigpu"
  "fig10_multigpu.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/fig10_multigpu.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
