// Ablation: composing Menos with base-model quantization (§6: "these
// methods are orthogonal to Menos, which implies they can be combined ...
// for further improvements").
//
// Part 1 measures the mechanism on real metered modules: footprint and
// output fidelity of int8/NF4 weights vs float.
// Part 2 projects the composition at paper scale: Fig 5's persistent
// memory with the shared base additionally quantized.
#include <cmath>

#include "bench_common.h"
#include "quant/quant_linear.h"

using namespace menos;
using menos::util::to_gb;

namespace {

void mechanism_table() {
  auto gpu = gpusim::make_sim_gpu("quant-bench", 256u << 20);
  util::Rng rng(1);
  const tensor::Index dim = 256;
  tensor::Tensor w = tensor::Tensor::empty({dim, dim}, *gpu);
  rng.fill_normal(w.data(), static_cast<std::size_t>(w.numel()), 0.05f);
  tensor::Tensor x = tensor::Tensor::empty({8, dim}, *gpu);
  rng.fill_normal(x.data(), static_cast<std::size_t>(x.numel()), 1.0f);
  tensor::Tensor y_ref = tensor::matmul(x, w);
  const auto rel_out_err = [&](const tensor::Tensor& y) {
    double err = 0, mag = 0;
    auto a = y_ref.to_vector();
    auto b = y.to_vector();
    for (std::size_t i = 0; i < a.size(); ++i) {
      err += (a[i] - b[i]) * (a[i] - b[i]);
      mag += a[i] * a[i];
    }
    return std::sqrt(err / mag);
  };

  std::printf("%-14s  %-12s  %-14s  %-16s\n", "weights", "bytes",
              "weight RMSE", "output rel. err");
  std::printf("%-14s  %-12s  %-14s  %-16s\n", "float32",
              util::format_bytes(w.bytes()).c_str(), "0", "0");
  for (quant::Scheme s :
       {quant::Scheme::Int8Rowwise, quant::Scheme::Nf4Block}) {
    quant::QuantizedTensor q = quant::QuantizedTensor::quantize(w, s, *gpu);
    std::printf("%-14s  %-12s  %-14.3g  %-16.3g\n", quant::scheme_name(s),
                util::format_bytes(q.bytes()).c_str(),
                quant::reconstruction_rmse(w, q),
                rel_out_err(quant::quantized_matmul(x, q)));
  }
}

void composition_table(const sim::ModelSpec& spec) {
  std::printf("\n--- %s: Fig 5 persistent memory with quantized base ---\n",
              spec.name.c_str());
  std::printf("%-8s  %-14s  %-14s  %-16s  %-16s\n", "clients",
              "vanilla (GB)", "menos (GB)", "menos+int8 (GB)",
              "menos+nf4 (GB)");
  for (int n = 1; n <= 6; ++n) {
    const double vanilla = to_gb(spec.vanilla_persistent_bytes(n));
    const double menos_fp = to_gb(spec.menos_persistent_bytes(n));
    // Quantization shrinks only the shared base parameters M; adapters,
    // optimizer states and contexts stay full precision (the QLoRA recipe).
    const auto with_base = [&](double factor) {
      const std::size_t m = spec.server_param_bytes;
      return to_gb(spec.menos_persistent_bytes(n) - m +
                   static_cast<std::size_t>(static_cast<double>(m) * factor));
    };
    std::printf("%-8d  %-14.1f  %-14.1f  %-16.1f  %-16.1f\n", n, vanilla,
                menos_fp, with_base(0.25 + 0.004), with_base(0.125 + 0.008));
  }
}

}  // namespace

int main() {
  bench::print_header(
      "Ablation — Menos + base-model quantization (QLoRA / int8 style)",
      "§5.2: \"quantization techniques like QLoRA and GPTQ ... could also "
      "be applied to the shared model parameters in Menos\"");
  mechanism_table();
  composition_table(sim::ModelSpec::opt_1_3b());
  composition_table(sim::ModelSpec::llama2_7b());
  std::printf(
      "\nReading: quantizing the SHARED base multiplies Menos' savings — at "
      "4 Llama clients, vanilla needs ~98 GB, Menos ~27 GB, and Menos over "
      "an NF4 base ~6 GB, putting a 7B model + 4 tenants inside a single "
      "consumer GPU.\n");
  return 0;
}
