file(REMOVE_RECURSE
  "CMakeFiles/menos_net.dir/inproc.cc.o"
  "CMakeFiles/menos_net.dir/inproc.cc.o.d"
  "CMakeFiles/menos_net.dir/message.cc.o"
  "CMakeFiles/menos_net.dir/message.cc.o.d"
  "CMakeFiles/menos_net.dir/tcp.cc.o"
  "CMakeFiles/menos_net.dir/tcp.cc.o.d"
  "libmenos_net.a"
  "libmenos_net.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/menos_net.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
