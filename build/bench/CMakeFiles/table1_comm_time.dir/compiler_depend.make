# Empty compiler generated dependencies file for table1_comm_time.
# This may be replaced when dependencies are built.
