// Figure 6: average time for clients to complete one round of fine-tuning
// as the number of clients grows, vanilla (task-level swap) vs Menos.
//
// The second half leaves the simulator and measures round-time inflation on
// the LIVE server when the link is lossy (ISSUE 4): a fault-injecting
// dialer kills/corrupts the client's connection at a fixed per-frame rate
// and the reconnect/resume machinery (docs/FAULTS.md) absorbs it. Backoff
// runs at time_scale = 0, so the inflation shown is pure recovery work —
// redial, ResumeSession handshake, replayed RPCs — not sleeping.
#include <memory>
#include <vector>

#include "bench_common.h"
#include "core/client.h"
#include "core/server.h"
#include "net/faulty.h"
#include "net/transport.h"
#include "util/stopwatch.h"

using namespace menos;

namespace {

void run_model(const sim::ModelSpec& spec, int max_clients,
               const char* paper_note) {
  std::printf("\n--- %s ---\n%s\n", spec.name.c_str(), paper_note);
  std::printf("%-8s  %-16s  %-16s\n", "clients", "vanilla (s/iter)",
              "menos (s/iter)");
  for (int n = 1; n <= max_clients; ++n) {
    auto vanilla = sim::run_split_finetune(
        bench::make_config(spec, core::ServingMode::VanillaTaskSwap, n));
    auto menos_r = sim::run_split_finetune(
        bench::make_config(spec, core::ServingMode::MenosOnDemand, n));
    std::printf("%-8d  %-16s  %-16s\n", n,
                bench::cell(vanilla, vanilla.avg_iteration_s).c_str(),
                bench::cell(menos_r, menos_r.avg_iteration_s).c_str());
  }
}

// ----- live lossy-link round times -----

nn::TransformerConfig lossy_model() {
  nn::TransformerConfig c = nn::TransformerConfig::tiny_opt();
  c.dim = 32;
  c.n_heads = 2;
  c.ffn_hidden = 64;
  c.n_layers = 3;
  return c;
}

struct LossyOutcome {
  double avg_round_s = 0.0;
  std::uint64_t retries = 0;
  std::uint64_t resumes = 0;
  std::uint64_t faults = 0;
};

LossyOutcome run_lossy(double fault_prob, int rounds) {
  gpusim::DeviceManager devices(1, 256u << 20);
  core::ServerConfig config;
  config.base_seed = 42;
  config.lease_seconds = 60.0;  // parked sessions easily outlive a redial
  core::Server server(config, devices, lossy_model());
  net::InprocAcceptor acceptor;
  server.start(acceptor);

  net::Dialer dialer = [&acceptor] { return acceptor.connect(); };
  std::shared_ptr<net::FaultInjector> injector;
  if (fault_prob > 0.0) {
    net::FaultPlan plan;
    plan.seed = 0xfa06;
    plan.drop_send_prob = fault_prob / 2.0;
    plan.drop_receive_prob = fault_prob / 2.0;
    plan.skip_frames = 4;  // let the Hello/HelloAck handshake through
    injector = std::make_shared<net::FaultInjector>(plan);
    dialer = net::faulty_dialer(std::move(dialer), injector);
  }

  core::ClientOptions options;
  options.finetune.model = lossy_model();
  options.finetune.batch_size = 2;
  options.finetune.seq_len = 8;
  options.finetune.adapter_seed = 7;
  options.base_seed = 42;
  options.retry.time_scale = 0.0;  // measure recovery work, not backoff sleep
  gpusim::DeviceManager client_devices(1, 256u << 20);
  core::Client client(options, dialer(), client_devices.gpu(0), dialer);
  client.connect();

  data::CharTokenizer tok;
  data::DataLoader loader(tok.encode(data::make_shakespeare_like(2000, 5).text),
                          2, 8, 3);
  util::RunningStat round_s;
  for (int i = 0; i < rounds; ++i) {
    util::Stopwatch sw;
    client.train_step(loader.next());
    round_s.add(sw.elapsed_seconds());
  }

  LossyOutcome out;
  out.avg_round_s = round_s.mean();
  out.retries = client.retries();
  out.resumes = client.resumes();
  if (injector != nullptr) out.faults = injector->stats().faults();
  client.disconnect();
  server.stop();
  return out;
}

void run_lossy_sweep() {
  const int rounds = 12;
  std::printf(
      "\n--- live server: round time vs per-frame fault rate (%d rounds, "
      "backoff time_scale = 0) ---\n", rounds);
  std::printf("%-12s  %-14s  %-9s  %-9s  %s\n", "fault rate", "avg round (s)",
              "retries", "resumes", "faults injected");
  for (const double rate : {0.0, 0.02, 0.05, 0.10}) {
    const LossyOutcome out = run_lossy(rate, rounds);
    std::printf("%-12.2f  %-14.4f  %-9llu  %-9llu  %llu\n", rate,
                out.avg_round_s, static_cast<unsigned long long>(out.retries),
                static_cast<unsigned long long>(out.resumes),
                static_cast<unsigned long long>(out.faults));
  }
}

}  // namespace

int main() {
  bench::print_header(
      "Fig 6 — average time per fine-tuning round vs number of clients",
      "Fig 6(a) OPT: vanilla ~7 s up to 3 clients then 18.2 s at 6; Menos "
      "~8.7 s at 6. Fig 6(b) Llama: vanilla 3.7 -> 63.1 -> 154.4 s, N/A at "
      "5+; Menos 4.7 -> 6.0 s");
  run_model(sim::ModelSpec::opt_1_3b(), 6,
            "(paper: swap starts beyond 3 clients)");
  run_model(sim::ModelSpec::llama2_7b(), 6,
            "(paper: swap starts at 2 clients; N/A from 5 clients)");
  run_lossy_sweep();
  return 0;
}
