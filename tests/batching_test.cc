// Cross-client fused batched trunk compute (Policy::CoalescedBatch,
// docs/ARCHITECTURE.md "Cross-client batched trunk compute").
//
// The contract under test: coalescing compatible clients into one fused
// pass through the shared trunk is a pure scheduling optimization — every
// client's loss trajectory must be BIT-identical to the same job run solo
// on an unloaded FCFS server. Each scenario trains the same population
// twice (solo reference, then batched under memory pressure with
// concurrent drivers) and compares float-for-float.
#include <gtest/gtest.h>

#include <chrono>
#include <cstdlib>
#include <memory>
#include <thread>
#include <vector>

#include "core/batch.h"
#include "core/client.h"
#include "core/server.h"
#include "data/dataset.h"
#include "net/transport.h"
#include "util/mutex.h"

namespace menos::core {
namespace {

// Deep trunks on purpose: the server hosts blocks [1, n_layers), so with 8
// layers one server pass costs ~7x a client's single block. The server is
// then the bottleneck of the closed loop, which makes queues (and hence
// coalescing opportunities) a structural property of the test rather than
// a micro-timing accident.
nn::TransformerConfig bt_opt() {
  nn::TransformerConfig c = nn::TransformerConfig::tiny_opt();
  c.dim = 32;
  c.n_heads = 2;
  c.ffn_hidden = 64;
  c.n_layers = 8;
  return c;
}

nn::TransformerConfig bt_llama_gqa() {
  nn::TransformerConfig c = nn::TransformerConfig::tiny_llama();
  c.dim = 32;
  c.n_heads = 2;
  c.n_kv_heads = 1;  // grouped-query attention: repeat_heads on the tape
  c.ffn_hidden = 64;
  c.n_layers = 8;
  return c;
}

struct Scenario {
  nn::TransformerConfig model;
  nn::AdapterSpec adapter;
  ServingMode mode = ServingMode::MenosOnDemand;
};

nn::AdapterSpec prefix_adapter() {
  nn::AdapterSpec a;
  a.type = nn::AdapterType::Prefix;
  a.prefix_len = 4;
  return a;
}

nn::AdapterSpec lora_adapter() {
  nn::AdapterSpec a;
  a.type = nn::AdapterType::Lora;
  a.rank = 4;
  a.alpha = 8.0f;
  return a;
}

struct Rig {
  Rig(const Scenario& sc, sched::Policy policy)
      : scenario(sc), devices(1, 256u << 20) {
    config.mode = sc.mode;
    config.sched_policy = policy;
    config.base_seed = 42;
    config.executor_threads =
        std::getenv("MENOS_EXECUTOR_THREADS") != nullptr ? 0 : 4;
    server = std::make_unique<Server>(config, devices, sc.model);
    server->start(acceptor);
  }
  ~Rig() {
    if (server != nullptr) server->stop();
  }

  std::unique_ptr<Client> client(std::uint64_t seed) {
    ClientOptions options;
    options.finetune.model = scenario.model;
    options.finetune.adapter = scenario.adapter;
    options.finetune.batch_size = 2;
    options.finetune.seq_len = 8;
    options.finetune.adapter_seed = seed;
    options.base_seed = 42;
    auto c = std::make_unique<Client>(options, acceptor.connect(),
                                      client_devices.gpu(0));
    c->connect();
    return c;
  }

  Scenario scenario;
  gpusim::DeviceManager devices;
  gpusim::DeviceManager client_devices{1, 1u << 30};
  ServerConfig config;
  net::InprocAcceptor acceptor;
  std::unique_ptr<Server> server;
};

data::DataLoader bt_loader(std::uint64_t seed) {
  data::CharTokenizer tok;
  return data::DataLoader(
      tok.encode(data::make_shakespeare_like(2000, 3).text), 2, 8, seed);
}

constexpr int kClients = 8;
constexpr int kSteps = 6;
constexpr int kEvalRounds = 3;

/// Reusable lockstep barrier: all drivers start each round together, and
/// the coordinating main thread joins as one extra party so it can gate
/// the scheduler pool around each burst of requests.
class StepBarrier {
 public:
  explicit StepBarrier(int parties) : parties_(parties) {}

  void arrive_and_wait() {
    util::MutexLock lock(mutex_);
    const std::uint64_t generation = generation_;
    if (++arrived_ == parties_) {
      arrived_ = 0;
      ++generation_;
      cv_.notify_all();
      return;
    }
    while (generation_ == generation) cv_.wait(mutex_);
  }

 private:
  util::Mutex mutex_;
  util::CondVar cv_;
  const int parties_;
  int arrived_ = 0;
  std::uint64_t generation_ = 0;
};

/// Per-client trajectory: kSteps training losses, then kEvalRounds eval
/// losses (eval-only forwards ride the same fused path).
using LossCurves = std::vector<std::vector<double>>;

/// `expect_groups`: this population is coalescible, so both waves of the
/// concurrent run must actually exercise group grants (false for
/// populations that must never coalesce, e.g. LoRA clients).
LossCurves drive(Rig& rig, bool concurrent, bool expect_groups) {
  LossCurves curves(kClients);
  if (!concurrent) {
    // Unloaded reference: one client at a time, zero contention.
    for (int c = 0; c < kClients; ++c) {
      auto client = rig.client(1000 + static_cast<std::uint64_t>(c));
      auto loader = bt_loader(static_cast<std::uint64_t>(c));
      auto& curve = curves[static_cast<std::size_t>(c)];
      for (int s = 0; s < kSteps; ++s) {
        curve.push_back(client->train_step(loader.next()).loss);
      }
      for (int e = 0; e < kEvalRounds; ++e) {
        curve.push_back(client->evaluate(loader.next()));
      }
      client->disconnect();
    }
    return curves;
  }

  std::vector<std::unique_ptr<Client>> clients;
  clients.reserve(kClients);
  for (int c = 0; c < kClients; ++c) {
    clients.push_back(rig.client(1000 + static_cast<std::uint64_t>(c)));
  }
  const std::size_t fwd = clients[0]->server_forward_bytes();
  const std::size_t bwd = clients[0]->server_backward_bytes();
  const std::size_t avail = rig.server->scheduler().available();
  sched::Scheduler& sched = rig.server->scheduler();

  // Phase pools: forwards run under ~2.2 forward demands, backwards under
  // ~2.2 backward demands — room for two concurrent operations, so a burst
  // of 8 queued requests coalesces into pairs. When a backward demand
  // exceeds the whole forward pool (the re-forward modes, whose forward
  // demand is a no-grad pass), the backward phase is self-gating: every
  // backward blocks until the coordinator widens the pool, making backward
  // pairs deterministic too. Otherwise (ReleaseEarly: grad-tracked forward,
  // so fwd ~= bwd) backwards queue FCFS behind the forward pairs and pair
  // up at completion passes whenever two are waiting together.
  const std::size_t fwd_pool = fwd * 11 / 5;
  const std::size_t bwd_pool = bwd * 11 / 5;
  const bool bwd_self_gates = bwd > fwd_pool;
  EXPECT_LE(fwd_pool, avail) << "rig pool smaller than assumed";
  EXPECT_LE(bwd_pool, avail) << "rig pool smaller than assumed";
  if (fwd_pool > avail || bwd_pool > avail) return curves;

  // Deterministic coalescing on any machine, via scheduler-level gating
  // instead of timing: a round opens with the ENTIRE pool reserved, so
  // every driver's forward must queue. Once all 8 sit in the scheduler
  // (pollable through stats().requests), releasing the forward pool runs
  // one schedule pass over the whole class and pairs coalesce — no
  // dependence on thread interleavings, core count, or compute speed.
  std::size_t reserved = 0;
  const auto set_free = [&](std::size_t target_free) {
    const std::size_t target_reserved = avail - target_free;
    if (target_reserved > reserved) {
      sched.reserve_persistent(0, target_reserved - reserved);
    } else if (reserved > target_reserved) {
      sched.release_persistent(0, reserved - target_reserved);
    }
    reserved = target_reserved;
  };
  const auto requests_reach = [&](std::uint64_t want) {
    for (int i = 0; i < 60000; ++i) {
      if (sched.stats().requests >= want) return true;
      std::this_thread::sleep_for(std::chrono::milliseconds(1));
    }
    return false;
  };

  StepBarrier barrier(kClients + 1);
  std::vector<std::thread> drivers;
  drivers.reserve(kClients);
  for (int c = 0; c < kClients; ++c) {
    drivers.emplace_back([&, c] {
      auto loader = bt_loader(static_cast<std::uint64_t>(c));
      auto& curve = curves[static_cast<std::size_t>(c)];
      Client& client = *clients[static_cast<std::size_t>(c)];
      for (int r = 0; r < kSteps + kEvalRounds; ++r) {
        barrier.arrive_and_wait();  // round opens
        curve.push_back(r < kSteps ? client.train_step(loader.next()).loss
                                   : client.evaluate(loader.next()));
        barrier.arrive_and_wait();  // round closes
      }
    });
  }

  sched::SchedulerStats mid{};
  std::uint64_t seen_requests = sched.stats().requests;
  bool gating = true;  // drops to false (with a failure) if a poll times out
  for (int r = 0; r < kSteps + kEvalRounds; ++r) {
    const bool train = r < kSteps;
    if (r == kSteps) mid = sched.stats();
    if (gating) set_free(0);
    barrier.arrive_and_wait();  // round opens; drivers send their forwards
    if (gating) {
      seen_requests += kClients;
      if (requests_reach(seen_requests)) {
        set_free(fwd_pool);
      } else {
        ADD_FAILURE() << "round " << r << ": forwards never all queued";
        gating = false;
        set_free(avail);
      }
    }
    if (train && gating) {
      // When backwards self-gate, all 8 block until the pool widens — one
      // pass, four pairs. Otherwise the poll just tracks round progress
      // and the widening lets the FCFS-held backwards drain in pairs.
      seen_requests += kClients;
      if (requests_reach(seen_requests)) {
        set_free(bwd_pool);
      } else {
        ADD_FAILURE() << "round " << r << ": backwards never all queued"
                      << (bwd_self_gates ? "" : " (non-self-gating mode)");
        gating = false;
        set_free(avail);
      }
    } else if (train) {
      seen_requests += kClients;
    }
    barrier.arrive_and_wait();  // round closes: every reply delivered
  }
  for (auto& d : drivers) d.join();
  set_free(avail);  // hand the full pool back before teardown checks

  if (expect_groups) {
    EXPECT_GT(mid.coalesced_groups, 0u)
        << "training wave never coalesced a backward group";
  }

  const sched::SchedulerStats fin = sched.stats();
  if (expect_groups) {
    EXPECT_GT(fin.coalesced_groups, mid.coalesced_groups)
        << "eval wave never coalesced a forward group";
  } else {
    EXPECT_EQ(fin.coalesced_groups, 0u)
        << "incompatible clients must never coalesce";
  }

  // Scheduler ledger: every request granted, nothing left waiting.
  EXPECT_EQ(fin.grants, fin.requests);
  EXPECT_EQ(sched.waiting_count(), 0u);
  EXPECT_GE(fin.coalesced_members, 2 * fin.coalesced_groups);

  for (auto& client : clients) client->disconnect();
  return curves;
}

void expect_identical(const LossCurves& loaded, const LossCurves& reference) {
  ASSERT_EQ(loaded.size(), reference.size());
  for (std::size_t c = 0; c < loaded.size(); ++c) {
    ASSERT_EQ(loaded[c].size(), reference[c].size()) << "client " << c;
    for (std::size_t s = 0; s < loaded[c].size(); ++s) {
      EXPECT_EQ(loaded[c][s], reference[c][s])
          << "client " << c << " step " << s
          << " (last index is the eval pass)";
    }
  }
}

/// Full scenario driver: solo-FCFS reference vs CoalescedBatch under load,
/// bit-identical curves, fused passes exercised (or provably not, for
/// populations that must never coalesce), and clean teardown.
void run_scenario(const Scenario& sc, bool expect_groups) {
  LossCurves reference;
  {
    Rig rig(sc, sched::Policy::FcfsBackfill);
    reference = drive(rig, /*concurrent=*/false, expect_groups);
  }

  Rig rig(sc, sched::Policy::CoalescedBatch);
  const LossCurves loaded = drive(rig, /*concurrent=*/true, expect_groups);
  expect_identical(loaded, reference);

  ASSERT_NE(rig.server->batch_coordinator(), nullptr);
  const BatchCoordinator::BatchingStats bs =
      rig.server->batch_coordinator()->stats();
  const sched::SchedulerStats ss = rig.server->scheduler().stats();
  if (expect_groups) {
    EXPECT_GT(bs.groups, 0u) << "load never exercised a fused pass";
    EXPECT_GE(bs.members, 2 * bs.groups);
    EXPECT_EQ(bs.groups, ss.coalesced_groups);
    EXPECT_EQ(bs.members, ss.coalesced_members);
    // At least one fused backward went through the captured StepGraph
    // (replay-vs-eager bit-identity itself is pinned in graph_test).
    EXPECT_GT(bs.captures + bs.replays, 0u);
  } else {
    EXPECT_EQ(bs.groups, 0u) << "incompatible clients must never coalesce";
    EXPECT_EQ(ss.coalesced_groups, 0u);
  }

  // Teardown accounting: every GPU byte returns to the metered device.
  rig.server->stop();
  EXPECT_EQ(rig.server->session_count(), 0);
  rig.server.reset();
  EXPECT_EQ(rig.devices.gpu(0).allocated(), 0u);
  EXPECT_EQ(rig.client_devices.gpu(0).allocated(), 0u);
}

}  // namespace

TEST(Batching, PrefixAdapterOnDemandBitIdenticalUnderCoalescing) {
  // The canonical coalescible population: frozen trunk (prefix rows live
  // in the client's input section), on-demand re-forward.
  run_scenario({bt_opt(), prefix_adapter(), ServingMode::MenosOnDemand},
               /*expect_groups=*/true);
}

TEST(Batching, PrefixAdapterReleaseEarlyBitIdenticalUnderCoalescing) {
  // ReleaseEarly's solo backward runs its re-forward in grad mode; the
  // fused pass must still reproduce its values exactly (tape bookkeeping
  // never changes the numbers).
  run_scenario({bt_opt(), prefix_adapter(), ServingMode::MenosReleaseEarly},
               /*expect_groups=*/true);
}

TEST(Batching, GroupedQueryAttentionBitIdenticalUnderCoalescing) {
  // GQA trunk (n_kv_heads < n_heads): the fused backward's StepGraph must
  // replay repeat_heads correctly for stacked batches.
  run_scenario({bt_llama_gqa(), prefix_adapter(), ServingMode::MenosOnDemand},
               /*expect_groups=*/true);
}

TEST(Batching, LoraClientsNeverCoalesceButStillMatchSolo) {
  // LoRA trains trunk-adjacent parameters server-side: batch_key 0, every
  // grant solo. The policy must degrade to plain FCFS+backfill without
  // touching the math.
  run_scenario({bt_opt(), lora_adapter(), ServingMode::MenosOnDemand},
               /*expect_groups=*/false);
}

TEST(Batching, BatchMaxGroupCapsFusedGroupSize) {
  // ServerConfig::batch_max_group bounds how many clients one fused pass
  // may cover: with a cap of 2 every coalesced group has exactly 2 members
  // (>= 2 by definition, <= 2 by the cap). Numerics must be unaffected.
  LossCurves reference;
  const Scenario sc{bt_opt(), prefix_adapter(), ServingMode::MenosOnDemand};
  {
    Rig rig(sc, sched::Policy::FcfsBackfill);
    reference = drive(rig, /*concurrent=*/false, /*expect_groups=*/true);
  }
  Rig rig(sc, sched::Policy::CoalescedBatch);
  rig.server->scheduler().set_max_group_size(2);
  const LossCurves loaded = drive(rig, /*concurrent=*/true,
                                  /*expect_groups=*/true);
  expect_identical(loaded, reference);
  const sched::SchedulerStats ss = rig.server->scheduler().stats();
  EXPECT_GT(ss.coalesced_groups, 0u);
  EXPECT_EQ(ss.coalesced_members, 2 * ss.coalesced_groups);
}

}  // namespace menos::core
