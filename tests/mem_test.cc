// Tests for the menos::mem subsystem: the caching (pooling) allocator and
// the host-offload residency engine (ISSUE 3).
#include <cstddef>
#include <cstdlib>
#include <memory>
#include <string>
#include <vector>

#include <gtest/gtest.h>

#include "gpusim/device.h"
#include "mem/caching_allocator.h"
#include "mem/offload_engine.h"
#include "util/check.h"
#include "util/rng.h"

namespace menos {
namespace {

using mem::CachingAllocator;

std::unique_ptr<CachingAllocator> make_allocator(std::string name,
                                                 std::size_t capacity) {
  // Pin the factory to the unpooled meter while building the inner device
  // so these tests exercise exactly one pooling layer even under the CI
  // leg that exports MENOS_CACHING_ALLOC=1.
  const char* saved = std::getenv("MENOS_CACHING_ALLOC");
  const std::string restore = saved == nullptr ? "" : saved;
  setenv("MENOS_CACHING_ALLOC", "0", 1);
  auto inner = gpusim::make_sim_gpu(std::move(name), capacity);
  if (saved == nullptr) {
    unsetenv("MENOS_CACHING_ALLOC");
  } else {
    setenv("MENOS_CACHING_ALLOC", restore.c_str(), 1);
  }
  return std::make_unique<CachingAllocator>(std::move(inner));
}

TEST(CachingAllocatorTest, RoundSizeBuckets) {
  EXPECT_EQ(CachingAllocator::round_size(0), 0u);
  EXPECT_EQ(CachingAllocator::round_size(1), 512u);
  EXPECT_EQ(CachingAllocator::round_size(512), 512u);
  EXPECT_EQ(CachingAllocator::round_size(513), 1024u);
  // At and above 1 MiB the bucket is 64 KiB.
  EXPECT_EQ(CachingAllocator::round_size(1u << 20), 1u << 20);
  EXPECT_EQ(CachingAllocator::round_size((1u << 20) + 1),
            (1u << 20) + (64u << 10));
}

TEST(CachingAllocatorTest, FreedBlockIsReusedWithoutTouchingInner) {
  auto alloc = make_allocator("reuse", 32u << 20);
  void* a = alloc->allocate(1000);
  const auto after_first = alloc->cache_stats();
  EXPECT_EQ(after_first.misses, 1u);  // first allocation grows a segment
  alloc->deallocate(a, 1000);
  void* b = alloc->allocate(900);  // same 1024-byte bucket
  EXPECT_EQ(a, b);
  const auto after_second = alloc->cache_stats();
  EXPECT_EQ(after_second.hits, 1u);
  EXPECT_EQ(after_second.misses, 1u);
  EXPECT_EQ(after_second.segments_allocated, 1u);
  alloc->deallocate(b, 900);
}

TEST(CachingAllocatorTest, ByteIdenticalAccounting) {
  // stats().allocated and .peak must report the client's *requested* bytes
  // — exactly what an unpooled MeteredDevice reports — never the rounded
  // bucket or segment sizes (the ISSUE 3 acceptance criterion behind the
  // fig5 byte-identity check).
  auto alloc = make_allocator("exact", 64u << 20);
  void* a = alloc->allocate(1000);   // rounds to 1024
  void* b = alloc->allocate(70000);  // rounds to 70144
  EXPECT_EQ(alloc->stats().allocated, 71000u);
  EXPECT_EQ(alloc->stats().peak, 71000u);
  alloc->deallocate(a, 1000);
  EXPECT_EQ(alloc->stats().allocated, 70000u);
  EXPECT_EQ(alloc->stats().peak, 71000u);
  alloc->reset_peak();
  EXPECT_EQ(alloc->stats().peak, 70000u);
  alloc->deallocate(b, 70000);
  EXPECT_EQ(alloc->stats().allocated, 0u);
  // The pooling cost is visible only in the cached field.
  EXPECT_GT(alloc->stats().cached, 0u);
  alloc->empty_cache();
  EXPECT_EQ(alloc->stats().cached, 0u);
  EXPECT_EQ(alloc->inner().allocated(), 0u);
}

TEST(CachingAllocatorTest, SplitAndCoalesce) {
  auto alloc = make_allocator("split", 32u << 20);
  // Carve three neighbors out of one small segment, then free them all:
  // they must coalesce back into a single block covering the segment,
  // which empty_cache then returns to the inner device.
  void* a = alloc->allocate(100 * 1024);
  void* b = alloc->allocate(100 * 1024);
  void* c = alloc->allocate(100 * 1024);
  auto stats = alloc->cache_stats();
  EXPECT_EQ(stats.segments_allocated, 1u);  // all three share the 2 MiB pool
  EXPECT_GE(stats.splits, 3u);
  alloc->deallocate(a, 100 * 1024);
  alloc->deallocate(c, 100 * 1024);
  alloc->deallocate(b, 100 * 1024);  // middle last: merges both neighbors
  stats = alloc->cache_stats();
  EXPECT_GE(stats.coalesces, 2u);
  alloc->empty_cache();
  EXPECT_EQ(alloc->cache_stats().segment_bytes, 0u);
  EXPECT_EQ(alloc->inner().allocated(), 0u);
}

TEST(CachingAllocatorTest, OomFlushesIdleSegmentsAndRetries) {
  auto alloc = make_allocator("oom-retry", 4u << 20);
  // A freed 1.5 MiB segment holds capacity hostage; a 3 MiB request is too
  // big for the cached block AND for the remaining inner capacity, so the
  // allocator must flush the idle segment and retry — pooling never
  // changes what fits.
  void* a = alloc->allocate(3u << 19);
  alloc->deallocate(a, 3u << 19);
  EXPECT_GT(alloc->stats().cached, 0u);
  void* b = alloc->allocate(3u << 20);
  EXPECT_NE(b, nullptr);
  EXPECT_GE(alloc->cache_stats().segments_released, 1u);
  alloc->deallocate(b, 3u << 20);
  // And a genuinely impossible request still throws.
  EXPECT_THROW(alloc->allocate(8u << 20), OutOfMemory);
}

TEST(CachingAllocatorTest, SmallSegmentFallsBackToExactSizeOnTinyDevices) {
  // Capacity below the 2 MiB small-segment size: small requests must fall
  // back to exact-size segments instead of failing.
  auto alloc = make_allocator("tiny", 1u << 20);
  void* a = alloc->allocate(600 * 1024);
  void* b = alloc->allocate(400 * 1024);
  EXPECT_EQ(alloc->stats().allocated, 1024000u);
  alloc->deallocate(a, 600 * 1024);
  alloc->deallocate(b, 400 * 1024);
  alloc->empty_cache();
  EXPECT_EQ(alloc->inner().allocated(), 0u);
}

TEST(CachingAllocatorTest, ZeroByteAllocationsPassThrough) {
  auto alloc = make_allocator("zero", 1u << 20);
  void* a = alloc->allocate(0);
  void* b = alloc->allocate(0);
  ASSERT_NE(a, nullptr);
  ASSERT_NE(b, nullptr);
  EXPECT_NE(a, b);  // unique-sentinel contract preserved
  EXPECT_EQ(alloc->stats().allocated, 0u);
  alloc->deallocate(a, 0);
  alloc->deallocate(b, 0);
}

TEST(CachingAllocatorTest, FragmentationSurfacesInStats) {
  auto alloc = make_allocator("frag", 8u << 20);
  // Alternate live/free 256 KiB blocks inside one segment: free capacity
  // exists but the largest contiguous block is smaller, so
  // fragmentation() > 0.
  std::vector<void*> ptrs;
  for (int i = 0; i < 8; ++i) ptrs.push_back(alloc->allocate(256 * 1024));
  for (std::size_t i = 0; i < ptrs.size(); i += 2) {
    alloc->deallocate(ptrs[i], 256 * 1024);
  }
  const gpusim::MemoryStats s = alloc->stats();
  EXPECT_GT(s.largest_free_block, 0u);
  EXPECT_GT(s.fragmentation(), 0.0);
  EXPECT_LT(s.fragmentation(), 1.0);
  for (std::size_t i = 1; i < ptrs.size(); i += 2) {
    alloc->deallocate(ptrs[i], 256 * 1024);
  }
  alloc->empty_cache();
  EXPECT_EQ(alloc->stats().fragmentation(), 0.0);
}

TEST(CachingAllocatorTest, SteadyStateHitRateExceedsNinetyPercent) {
  // The ISSUE 3 acceptance loop: a steady-state allocation pattern (what a
  // training iteration looks like) must be served almost entirely from the
  // pool after warm-up.
  auto alloc = make_allocator("steady", 256u << 20);
  const std::size_t sizes[] = {4096,        65536,  1u << 20, 8192,
                               3u << 20,    300000, 512,      96 * 1024};
  std::vector<void*> ptrs;
  for (int round = 0; round < 50; ++round) {
    for (std::size_t size : sizes) ptrs.push_back(alloc->allocate(size));
    for (std::size_t i = 0; i < ptrs.size(); ++i) {
      alloc->deallocate(ptrs[i], sizes[i]);
    }
    ptrs.clear();
  }
  EXPECT_GT(alloc->cache_stats().hit_rate(), 0.9);
  alloc->empty_cache();
  EXPECT_EQ(alloc->inner().allocated(), 0u);
}

TEST(CachingAllocatorStressTest, RandomizedAllocFreeMatchesExactAccounting) {
  // Deterministic random alloc/free storm, shadow-accounted in the test:
  // at every step the pooled device's allocated/peak must equal the sum
  // of live *requested* bytes and its running maximum — the same numbers
  // an unpooled MeteredDevice produces. Runs under the ASan/TSan CI legs.
  auto alloc = make_allocator("stress", 64u << 20);
  util::Rng rng(0x5eedu);

  struct Live {
    void* ptr;
    std::size_t bytes;
  };
  std::vector<Live> live;
  std::size_t live_bytes = 0;
  std::size_t peak_bytes = 0;

  for (int step = 0; step < 4000; ++step) {
    const bool do_alloc =
        live.empty() ||
        (live_bytes < (24u << 20) && rng.next_below(100) < 55);
    if (do_alloc) {
      // Mostly small tensor-ish sizes, occasionally a large activation.
      std::size_t bytes = rng.next_below(100) < 90
                              ? 1 + rng.next_below(128 * 1024)
                              : (1u << 20) + rng.next_below(2u << 20);
      void* ptr = alloc->allocate(bytes);
      ASSERT_NE(ptr, nullptr);
      live.push_back(Live{ptr, bytes});
      live_bytes += bytes;
      peak_bytes = std::max(peak_bytes, live_bytes);
    } else {
      const std::size_t victim = rng.next_below(live.size());
      alloc->deallocate(live[victim].ptr, live[victim].bytes);
      live_bytes -= live[victim].bytes;
      live[victim] = live.back();
      live.pop_back();
    }
    ASSERT_EQ(alloc->stats().allocated, live_bytes) << "step " << step;
    ASSERT_EQ(alloc->stats().peak, peak_bytes) << "step " << step;
  }
  for (const Live& l : live) alloc->deallocate(l.ptr, l.bytes);
  EXPECT_EQ(alloc->stats().allocated, 0u);
  EXPECT_EQ(alloc->stats().peak, peak_bytes);
  const auto cache = alloc->cache_stats();
  EXPECT_GT(cache.hit_rate(), 0.5);  // pooling must actually engage
  alloc->empty_cache();
  EXPECT_EQ(alloc->stats().cached, 0u);
  EXPECT_EQ(alloc->inner().allocated(), 0u);
}

// ---------------------------------------------------------------------------
// OffloadEngine
// ---------------------------------------------------------------------------

/// A fake residency world: a byte budget standing in for the scheduler
/// pool, and a per-unit location flag standing in for tensor migration.
struct FakeWorld {
  std::size_t free_bytes = 0;
  std::vector<std::string> log;

  mem::UnitCallbacks callbacks_for(int id, std::size_t bytes) {
    mem::UnitCallbacks cb;
    cb.move = [this, id](bool to_device) {
      log.push_back((to_device ? "in:" : "out:") + std::to_string(id));
      if (!to_device) free_bytes += 0;  // scheduler credits eviction itself
    };
    cb.charge = [this, id, bytes] {
      if (bytes > free_bytes) {
        throw OutOfMemory("fake pool exhausted", bytes, free_bytes);
      }
      free_bytes -= bytes;
      log.push_back("charge:" + std::to_string(id));
    };
    return cb;
  }
};

TEST(OffloadEngineTest, EvictIdleFreesLruFirst) {
  mem::OffloadEngine engine;
  FakeWorld world;
  engine.register_unit(1, 100, world.callbacks_for(1, 100));
  engine.register_unit(2, 50, world.callbacks_for(2, 50));
  // Touch unit 1 so unit 2 becomes the least recently used.
  engine.begin_use(1);
  engine.end_use(1);

  const std::size_t freed = engine.evict_idle(40);
  EXPECT_EQ(freed, 50u);  // unit 2: LRU, and 50 >= 40
  EXPECT_FALSE(engine.resident(2));
  EXPECT_TRUE(engine.resident(1));
  ASSERT_EQ(world.log.size(), 1u);
  EXPECT_EQ(world.log[0], "out:2");
  EXPECT_EQ(engine.stats().swap_outs, 1u);
  EXPECT_EQ(engine.stats().bytes_out, 50u);
  EXPECT_EQ(engine.resident_bytes(), 100u);
}

TEST(OffloadEngineTest, EvictSkipsBusyAndExceptedUnits) {
  mem::OffloadEngine engine;
  FakeWorld world;
  engine.register_unit(1, 100, world.callbacks_for(1, 100));
  engine.register_unit(2, 100, world.callbacks_for(2, 100));
  engine.register_unit(3, 100, world.callbacks_for(3, 100));
  engine.begin_use(1);  // busy: never evicted
  EXPECT_EQ(engine.evict_idle(1000, /*except_id=*/2), 100u);  // only 3 left
  EXPECT_TRUE(engine.resident(1));
  EXPECT_TRUE(engine.resident(2));
  EXPECT_FALSE(engine.resident(3));
  engine.end_use(1);
  EXPECT_EQ(engine.evict_idle(1000, /*except_id=*/2), 100u);  // now 1 goes
  EXPECT_FALSE(engine.resident(1));
}

TEST(OffloadEngineTest, EnsureResidentChargesThenMovesIn) {
  mem::OffloadEngine engine;
  FakeWorld world;
  world.free_bytes = 0;
  engine.register_unit(7, 64, world.callbacks_for(7, 64));
  ASSERT_EQ(engine.evict_idle(64), 64u);
  world.log.clear();

  world.free_bytes = 100;
  engine.ensure_resident(7);
  EXPECT_TRUE(engine.resident(7));
  ASSERT_EQ(world.log.size(), 2u);
  EXPECT_EQ(world.log[0], "charge:7");  // charge strictly before move
  EXPECT_EQ(world.log[1], "in:7");
  EXPECT_EQ(world.free_bytes, 36u);
  EXPECT_EQ(engine.stats().swap_ins, 1u);
  // Already resident: a second call is a no-op.
  engine.ensure_resident(7);
  EXPECT_EQ(engine.stats().swap_ins, 1u);
}

TEST(OffloadEngineTest, FailedChargeLeavesUnitOnHostAndThrows) {
  mem::OffloadEngine engine;
  FakeWorld world;
  engine.register_unit(7, 64, world.callbacks_for(7, 64));
  ASSERT_EQ(engine.evict_idle(64), 64u);
  world.free_bytes = 10;  // not enough for the charge
  EXPECT_THROW(engine.ensure_resident(7), OutOfMemory);
  EXPECT_EQ(engine.residency(7), mem::Residency::OnHost);
  EXPECT_EQ(engine.stats().swap_ins, 0u);
  // More room later: the retry succeeds.
  world.free_bytes = 64;
  engine.ensure_resident(7);
  EXPECT_TRUE(engine.resident(7));
}

TEST(OffloadEngineTest, PrefetchCompletesAsynchronously) {
  mem::OffloadEngine engine;
  FakeWorld world;
  engine.register_unit(7, 64, world.callbacks_for(7, 64));
  ASSERT_EQ(engine.evict_idle(64), 64u);
  world.free_bytes = 64;
  engine.prefetch(7);
  // ensure_resident joins the in-flight prefetch instead of double-moving.
  engine.ensure_resident(7);
  EXPECT_TRUE(engine.resident(7));
  EXPECT_EQ(engine.stats().swap_ins, 1u);
  EXPECT_EQ(engine.stats().prefetches, 1u);
  // Prefetching a resident (or unknown) unit is a cheap no-op.
  engine.prefetch(7);
  engine.prefetch(999);
  EXPECT_EQ(engine.stats().swap_ins, 1u);
}

TEST(OffloadEngineTest, UnregisterReportsWhetherChargeIsStillHeld) {
  mem::OffloadEngine engine;
  FakeWorld world;
  engine.register_unit(1, 100, world.callbacks_for(1, 100));
  engine.register_unit(2, 100, world.callbacks_for(2, 100));
  ASSERT_EQ(engine.evict_idle(100), 100u);  // unit 1 (older stamp)
  EXPECT_FALSE(engine.unregister_unit(1));  // evicted: charge already back
  EXPECT_TRUE(engine.unregister_unit(2));   // resident: caller must release
  EXPECT_FALSE(engine.unregister_unit(2));  // unknown now
}

TEST(OffloadEngineTest, ReleaseUnitSwapsOutAndReportsHeldCharge) {
  mem::OffloadEngine engine;
  FakeWorld world;
  engine.register_unit(1, 100, world.callbacks_for(1, 100));

  // Resident at release: the unit is moved out and the charge reported as
  // still held (the migration caller releases it on the source shard).
  const mem::ExportedUnit out = engine.release_unit(1);
  EXPECT_EQ(out.bytes, 100u);
  EXPECT_TRUE(out.was_resident);
  ASSERT_EQ(world.log.size(), 1u);
  EXPECT_EQ(world.log[0], "out:1");
  EXPECT_EQ(engine.stats().swap_outs, 1u);
  EXPECT_EQ(engine.stats().bytes_out, 100u);
  EXPECT_FALSE(engine.resident(1));  // unknown id -> not resident

  // Already-evicted at release: no move, no charge to release.
  engine.register_unit(2, 60, world.callbacks_for(2, 60));
  ASSERT_EQ(engine.evict_idle(60), 60u);
  world.log.clear();
  const mem::ExportedUnit out2 = engine.release_unit(2);
  EXPECT_EQ(out2.bytes, 60u);
  EXPECT_FALSE(out2.was_resident);
  EXPECT_TRUE(world.log.empty());
}

TEST(OffloadEngineTest, AdoptedUnitLandsOnHostAndChargesOnFirstUse) {
  // Two engines standing in for two shards with separate pools.
  mem::OffloadEngine src;
  mem::OffloadEngine dst;
  FakeWorld src_world;
  FakeWorld dst_world;
  src.register_unit(5, 128, src_world.callbacks_for(5, 128));

  const mem::ExportedUnit moved = src.release_unit(5);
  dst.adopt_unit(5, moved, dst_world.callbacks_for(5, 128));

  // Adoption itself takes no charge and moves nothing.
  EXPECT_EQ(dst.residency(5), mem::Residency::OnHost);
  EXPECT_TRUE(dst_world.log.empty());
  EXPECT_EQ(dst.resident_bytes(), 0u);

  // First ensure_resident behaves exactly like a post-eviction return:
  // charge the destination pool, then move in.
  dst_world.free_bytes = 128;
  dst.ensure_resident(5);
  EXPECT_TRUE(dst.resident(5));
  ASSERT_EQ(dst_world.log.size(), 2u);
  EXPECT_EQ(dst_world.log[0], "charge:5");
  EXPECT_EQ(dst_world.log[1], "in:5");
  EXPECT_EQ(dst_world.free_bytes, 0u);

  // The adopted unit is a full citizen: evictable, unregisterable.
  EXPECT_EQ(dst.evict_idle(1), 128u);
  EXPECT_FALSE(dst.unregister_unit(5));
}

TEST(OffloadEngineTest, TransferTimeIsPricedWithTheSharedModel) {
  const gpusim::TransferModel model{1.0e9, 1.0e-3};
  mem::OffloadEngine engine(model);
  FakeWorld world;
  engine.register_unit(1, 1000000, world.callbacks_for(1, 1000000));
  ASSERT_EQ(engine.evict_idle(1), 1000000u);
  world.free_bytes = 1000000;
  engine.ensure_resident(1);
  // One out + one in, each latency + bytes/bandwidth.
  EXPECT_DOUBLE_EQ(engine.stats().modeled_transfer_s,
                   2 * model.seconds_for(1000000));
}

}  // namespace
}  // namespace menos
