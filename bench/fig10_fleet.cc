// Fleet scaling tracker (extends Fig 10 to live multi-GPU serving):
// sessions/sec for 256 concurrent WAN clients against a fleet of 1/2/4
// single-GPU shards, a placement-policy ablation at 4 shards, and a
// migrated-session bit-identity check. Emits BENCH_fleet.json (or argv[1]).
//
// The workload is memory-bound by construction, matching the paper's
// premise: MenosReleaseAfterBackward holds each session's iteration
// allocation across the client's gradient round trip, and the uplink
// conditioner puts that round trip at WAN latency — so a shard's GPU
// capacity, not its compute, caps how many sessions make progress at once.
// Per-shard capacity is calibrated so ONE shard admits only ~2 concurrent
// iterations at 256 resident sessions; each added shard both spreads the
// persistent A+O load and brings fresh schedulable bytes, so throughput
// scales with GPU count. Uplink latency is paid in the sender's (client
// driver) thread, so the single-core server container never sleeps on the
// serving path.
#include <algorithm>
#include <atomic>
#include <chrono>
#include <cmath>
#include <cstdio>
#include <cstdlib>
#include <functional>
#include <memory>
#include <string>
#include <thread>
#include <vector>

#include "core/client.h"
#include "core/server.h"
#include "data/dataset.h"
#include "fleet/fleet.h"
#include "net/transport.h"

namespace {

using namespace menos;

constexpr int kSessions = 256;
constexpr int kStepsPerSession = 2;
constexpr int kDrivers = 64;
constexpr double kUplinkLatencyS = 0.025;

nn::TransformerConfig bench_model() {
  nn::TransformerConfig c = nn::TransformerConfig::tiny_opt();
  c.dim = 32;
  c.n_heads = 2;
  c.ffn_hidden = 64;
  c.n_layers = 3;
  return c;
}

core::ClientOptions bench_options(std::uint64_t adapter_seed) {
  core::ClientOptions options;
  options.finetune.model = bench_model();
  options.finetune.batch_size = 2;
  options.finetune.seq_len = 8;
  options.finetune.adapter_seed = adapter_seed;
  options.base_seed = 42;
  options.retry.time_scale = 0.0;
  return options;
}

data::DataLoader bench_loader(std::uint64_t seed) {
  data::CharTokenizer tok;
  return data::DataLoader(
      tok.encode(data::make_shakespeare_like(2000, 5).text), 2, 8, seed);
}

double now_seconds() {
  return std::chrono::duration<double>(
             std::chrono::steady_clock::now().time_since_epoch())
      .count();
}

struct Calibration {
  std::size_t store_bytes = 0;       ///< base model resident per shard
  std::size_t persistent_bytes = 0;  ///< per-session A + O reservation
  std::size_t iteration_bytes = 0;   ///< held across forward..backward
};

/// Measure, on a throwaway single server with ample memory, what one
/// session costs: its persistent reservation and the allocation it holds
/// across an iteration (sampled while a slow uplink keeps the iteration
/// open). These sizes set per-shard GPU capacity below.
Calibration calibrate() {
  Calibration cal;
  gpusim::DeviceManager devices(1, 2ull << 30);
  core::ServerConfig config;
  config.mode = core::ServingMode::MenosReleaseAfterBackward;
  config.base_seed = 42;
  net::NetworkConditioner uplink;
  uplink.latency_s = 0.05;
  net::InprocAcceptor acceptor(uplink, net::NetworkConditioner{});
  core::Server server(config, devices, bench_model());
  cal.store_bytes = devices.gpu(0).allocated();
  server.start(acceptor);

  const std::size_t idle = server.scheduler().total_available();
  gpusim::DeviceManager cd(1, 256u << 20);
  core::Client client(bench_options(1), acceptor.connect(), cd.gpu(0));
  client.connect();
  cal.persistent_bytes = idle - server.scheduler().total_available();

  const std::size_t resident = server.scheduler().total_available();
  std::atomic<std::size_t> low{resident};
  std::atomic<bool> sampling{true};
  std::thread sampler([&] {
    while (sampling.load()) {
      const std::size_t now = server.scheduler().total_available();
      std::size_t prev = low.load();
      while (now < prev && !low.compare_exchange_weak(prev, now)) {
      }
      std::this_thread::sleep_for(std::chrono::microseconds(100));
    }
  });
  auto loader = bench_loader(2);
  client.train_step(loader.next());
  sampling.store(false);
  sampler.join();
  cal.iteration_bytes = resident - low.load();
  client.disconnect();
  server.stop();
  return cal;
}

fleet::FleetConfig throughput_config(int shards, const Calibration& cal,
                                     const std::string& policy) {
  fleet::FleetConfig fc;
  fc.server.mode = core::ServingMode::MenosReleaseAfterBackward;
  fc.server.base_seed = 42;
  fc.shards = shards;
  fc.policy = policy;
  // Same GPU size at every shard count (adding shards adds capacity): room
  // for the base model, all kSessions sessions' A + O landing on one shard
  // in the worst case, and ~2 in-flight iterations.
  fc.gpu_bytes_per_shard =
      cal.store_bytes +
      static_cast<std::size_t>(kSessions) * cal.persistent_bytes +
      2 * cal.iteration_bytes + (1u << 16);
  return fc;
}

struct Point {
  int shards = 0;
  std::string policy;
  double elapsed_s = 0.0;
  double sessions_per_sec = 0.0;
  int placement_spread = 0;  ///< max - min sessions placed per shard
};

/// kSessions clients (connect, kStepsPerSession train steps, disconnect)
/// through the fleet's router, driven by kDrivers client threads. Wall
/// time covers the full session lifecycle.
Point measure(int shards, const std::string& policy, const Calibration& cal,
              int steps) {
  fleet::Fleet fleet(throughput_config(shards, cal, policy), bench_model());
  net::NetworkConditioner uplink;
  uplink.latency_s = kUplinkLatencyS;
  net::InprocAcceptor acceptor(uplink, net::NetworkConditioner{});
  fleet.start(acceptor);

  // Three barrier-separated phases, all inside the measured window. The
  // handshake phase runs before any training so every session's persistent
  // A + O reservation lands while backfill grants are not yet competing
  // for the partition (admission-then-serve, as a real fleet would drain a
  // connect burst).
  const double t0 = now_seconds();
  std::vector<std::unique_ptr<gpusim::DeviceManager>> cds(kSessions);
  std::vector<std::unique_ptr<core::Client>> clients(kSessions);
  auto run_drivers = [](const std::function<void(int)>& body) {
    std::vector<std::thread> drivers;
    drivers.reserve(kDrivers);
    for (int t = 0; t < kDrivers; ++t) {
      drivers.emplace_back([&body, t] {
        for (int c = t; c < kSessions; c += kDrivers) body(c);
      });
    }
    for (auto& d : drivers) d.join();
  };
  run_drivers([&](int c) {
    cds[static_cast<std::size_t>(c)] =
        std::make_unique<gpusim::DeviceManager>(1, 64u << 20);
    clients[static_cast<std::size_t>(c)] = std::make_unique<core::Client>(
        bench_options(1000 + static_cast<std::uint64_t>(c)),
        acceptor.connect(), cds[static_cast<std::size_t>(c)]->gpu(0));
    clients[static_cast<std::size_t>(c)]->connect();
  });
  run_drivers([&](int c) {
    auto loader = bench_loader(static_cast<std::uint64_t>(c));
    for (int s = 0; s < steps; ++s) {
      clients[static_cast<std::size_t>(c)]->train_step(loader.next());
    }
  });
  run_drivers(
      [&](int c) { clients[static_cast<std::size_t>(c)]->disconnect(); });
  const double elapsed = now_seconds() - t0;

  Point p;
  p.shards = shards;
  p.policy = policy;
  p.elapsed_s = elapsed;
  p.sessions_per_sec = kSessions / elapsed;
  const std::vector<int> placed = fleet.router().placements();
  const auto [lo, hi] = std::minmax_element(placed.begin(), placed.end());
  p.placement_spread = *hi - *lo;
  fleet.stop();
  return p;
}

/// Bit-identity: the same client schedule on a standalone server vs a
/// 2-shard fleet with a forced mid-run migration.
bool migration_bit_identical(int rounds, int move_after, int* resumes_out) {
  std::vector<double> baseline;
  {
    gpusim::DeviceManager devices(1, 256u << 20);
    core::ServerConfig config;
    config.base_seed = 42;
    config.lease_seconds = 30.0;
    core::Server server(config, devices, bench_model());
    net::InprocAcceptor acceptor;
    server.start(acceptor);
    gpusim::DeviceManager cd(1, 256u << 20);
    core::Client client(bench_options(7), acceptor.connect(), cd.gpu(0));
    client.connect();
    auto loader = bench_loader(8);
    for (int i = 0; i < rounds; ++i) {
      baseline.push_back(client.train_step(loader.next()).loss);
    }
    client.disconnect();
    server.stop();
  }

  fleet::FleetConfig fc;
  fc.server.base_seed = 42;
  fc.server.lease_seconds = 30.0;
  fc.shards = 2;
  fc.gpu_bytes_per_shard = 256u << 20;
  fleet::Fleet fleet(fc, bench_model());
  net::InprocAcceptor acceptor;
  fleet.start(acceptor);
  net::Dialer dialer = [&acceptor] { return acceptor.connect(); };
  gpusim::DeviceManager cd(1, 256u << 20);
  core::Client client(bench_options(7), dialer(), cd.gpu(0), dialer);
  client.connect();
  const std::uint64_t token = client.session_token();
  const int src = fleet.router().shard_of(token);
  auto loader = bench_loader(8);
  std::vector<double> losses;
  for (int i = 0; i < rounds; ++i) {
    if (i == move_after) {
      for (int attempt = 0; attempt < 200; ++attempt) {
        if (fleet.migrate_session(token, 1 - src)) break;
        std::this_thread::sleep_for(std::chrono::milliseconds(5));
      }
    }
    losses.push_back(client.train_step(loader.next()).loss);
  }
  if (resumes_out != nullptr) {
    *resumes_out = static_cast<int>(client.resumes());
  }
  client.disconnect();
  fleet.stop();

  if (losses.size() != baseline.size()) return false;
  for (std::size_t i = 0; i < losses.size(); ++i) {
    if (losses[i] != baseline[i]) return false;
  }
  return true;
}

}  // namespace

int main(int argc, char** argv) {
  const std::string out_path =
      argc > 1 ? argv[1] : std::string("BENCH_fleet.json");

  const Calibration cal = calibrate();
  std::printf(
      "fig10_fleet: store=%zu B  per-session A+O=%zu B  iteration=%zu B\n",
      cal.store_bytes, cal.persistent_bytes, cal.iteration_bytes);

  std::vector<Point> scaling;
  for (int shards : {1, 2, 4}) {
    const Point p = measure(shards, "least-loaded", cal, kStepsPerSession);
    std::printf("shards=%d  %7.2f sessions/s  (%.2f s)  spread=%d%s\n",
                p.shards, p.sessions_per_sec, p.elapsed_s, p.placement_spread,
                shards == 1 ? ""
                            : "  [speedup vs 1: see JSON]");
    scaling.push_back(p);
  }
  const double base_rate = scaling[0].sessions_per_sec;

  std::vector<Point> ablation;
  for (const char* policy :
       {"round-robin", "least-loaded", "power-of-two", "adapter-affinity"}) {
    const Point p = measure(4, policy, cal, 1);
    std::printf("policy=%-16s  %7.2f sessions/s  spread=%d\n", policy,
                p.sessions_per_sec, p.placement_spread);
    ablation.push_back(p);
  }

  int resumes = 0;
  const bool identical = migration_bit_identical(10, 4, &resumes);
  std::printf("migration bit-identical: %s (resumes=%d)\n",
              identical ? "yes" : "NO", resumes);

  std::FILE* f = std::fopen(out_path.c_str(), "w");
  if (f == nullptr) {
    std::fprintf(stderr, "cannot open %s for writing\n", out_path.c_str());
    return 1;
  }
  std::fprintf(f, "{\n  \"bench\": \"fig10_fleet\",\n");
  std::fprintf(f, "  \"sessions\": %d,\n  \"steps_per_session\": %d,\n",
               kSessions, kStepsPerSession);
  std::fprintf(f, "  \"uplink_latency_ms\": %.1f,\n",
               kUplinkLatencyS * 1000.0);
  std::fprintf(f,
               "  \"calibration\": {\"store_bytes\": %zu, "
               "\"session_persistent_bytes\": %zu, "
               "\"iteration_bytes\": %zu},\n",
               cal.store_bytes, cal.persistent_bytes, cal.iteration_bytes);
  std::fprintf(f, "  \"scaling\": [\n");
  for (std::size_t i = 0; i < scaling.size(); ++i) {
    const Point& p = scaling[i];
    std::fprintf(f,
                 "    {\"shards\": %d, \"sessions_per_sec\": %.2f, "
                 "\"elapsed_s\": %.3f, \"speedup_vs_1\": %.2f}%s\n",
                 p.shards, p.sessions_per_sec, p.elapsed_s,
                 p.sessions_per_sec / base_rate,
                 i + 1 < scaling.size() ? "," : "");
  }
  std::fprintf(f, "  ],\n  \"policy_ablation\": [\n");
  for (std::size_t i = 0; i < ablation.size(); ++i) {
    const Point& p = ablation[i];
    std::fprintf(f,
                 "    {\"policy\": \"%s\", \"sessions_per_sec\": %.2f, "
                 "\"placement_spread\": %d}%s\n",
                 p.policy.c_str(), p.sessions_per_sec, p.placement_spread,
                 i + 1 < ablation.size() ? "," : "");
  }
  std::fprintf(f,
               "  ],\n  \"migration\": {\"rounds\": 10, \"moved_after\": 4, "
               "\"bit_identical\": %s, \"client_resumes\": %d}\n}\n",
               identical ? "true" : "false", resumes);
  std::fclose(f);
  std::printf("wrote %s\n", out_path.c_str());
  return 0;
}
