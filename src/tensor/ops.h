// Differentiable tensor operations.
//
// Broadcasting is deliberately narrow (same-shape elementwise, bias over
// the last dimension, scalar scaling): this is everything a transformer
// needs, and narrow contracts keep the backward rules exactly checkable.
// All ops allocate their outputs on the device of their first input.
#pragma once

#include <cstdint>
#include <utility>
#include <vector>

#include "tensor/autograd.h"
#include "tensor/tensor.h"
#include "util/rng.h"

namespace menos::tensor {

// ----- elementwise -----

/// c = a + b; shapes must match exactly.
Tensor add(const Tensor& a, const Tensor& b);

/// c = a - b; shapes must match exactly.
Tensor sub(const Tensor& a, const Tensor& b);

/// c = a * b (Hadamard); shapes must match exactly.
Tensor mul(const Tensor& a, const Tensor& b);

/// c = a * s for a compile-time-known scalar s.
Tensor scale(const Tensor& a, float s);

/// c[..., j] = x[..., j] + bias[j]; bias is 1-D of size x.last_dim.
Tensor add_bias(const Tensor& x, const Tensor& bias);

Tensor relu(const Tensor& a);
Tensor gelu(const Tensor& a);  ///< tanh approximation (GPT/OPT family)
Tensor silu(const Tensor& a);  ///< x * sigmoid(x) (Llama family)

/// gelu(x + bias) in one memory pass. Bit-identical to the composition
/// gelu(add_bias(x, bias)) — forward and backward use the same per-element
/// formulas and the same column-partitioned bias reduction, so graph
/// replay may substitute it freely (see tensor/graph.h).
Tensor bias_gelu(const Tensor& x, const Tensor& bias);

/// {h, y} with h = a + b and y = layer_norm(h, gamma, beta, eps), computed
/// in one pass over rows. Both results carry the same autograd nodes the
/// composition would (an "add" on h, a "layer_norm" on y), so gradients
/// are bit-identical; h stays available for residual consumers.
std::pair<Tensor, Tensor> fused_add_layer_norm(const Tensor& a,
                                               const Tensor& b,
                                               const Tensor& gamma,
                                               const Tensor& beta,
                                               float eps = 1e-5f);

/// Inverted dropout: each element survives with probability 1-p and is
/// scaled by 1/(1-p), so the expectation is preserved; the mask comes from
/// `rng` (all randomness in Menos is seeded — split and local runs drawing
/// from equal streams stay identical). p == 0 is the identity. The
/// backward pass reuses the forward mask.
Tensor dropout(const Tensor& a, float p, util::Rng& rng);

// ----- shape manipulation -----

/// Reinterpret the (contiguous) data with a new shape; shares storage.
Tensor reshape(const Tensor& a, Shape new_shape);

/// Generalized transpose (always copies). `dims` is a permutation of axes.
Tensor permute(const Tensor& a, const std::vector<int>& dims);

/// Swap the last two axes (copies); precondition ndim >= 2.
Tensor transpose_last(const Tensor& a);

/// Concatenate two 3-D tensors along axis 1 (the sequence axis).
Tensor concat_dim1(const Tensor& a, const Tensor& b);

/// Slice a 3-D tensor along axis 1: rows [start, start+len).
Tensor slice_dim1(const Tensor& a, Index start, Index len);

/// Broadcast a 2-D tensor [P, C] to [batch, P, C] by copying it per batch
/// row; backward sums the per-row gradients back into [P, C]. Used by the
/// prefix adapter to prepend one learned prefix to every sequence in a
/// batch. Graph-replayable (OpKind::TileBatch).
Tensor tile_batch(const Tensor& prefix, Index batch);

/// Repeat the head axis of a [B, H, T, D] tensor `repeat` times:
/// [B, H, T, D] -> [B, H*repeat, T, D], each source head copied into
/// `repeat` consecutive output heads; backward sums the copies. The GQA
/// key/value expansion. repeat == 1 returns the input unchanged.
/// Graph-replayable (OpKind::RepeatHeads).
Tensor repeat_heads(const Tensor& t, int repeat);

// ----- contractions -----

/// Matrix product with three accepted shape patterns:
///   [m,k] x [k,n]                  -> [m,n]
///   [B...,m,k] x [k,n]             -> [B...,m,n]  (shared right operand)
///   [B...,m,k] x [B...,k,n]        -> [B...,m,n]  (batched both sides)
Tensor matmul(const Tensor& a, const Tensor& b);

// ----- reductions / normalization -----

/// Sum of all elements -> shape {1}.
Tensor sum(const Tensor& a);

/// Mean of all elements -> shape {1}.
Tensor mean(const Tensor& a);

/// Softmax over the last dimension.
Tensor softmax_lastdim(const Tensor& a);

/// Softmax over the last dimension of attention scores shaped [..., T, T]
/// with a causal mask: position (t, s) with s > t contributes zero.
Tensor causal_masked_softmax(const Tensor& scores);

/// LayerNorm over the last dimension: gamma/beta are 1-D of that size.
Tensor layer_norm(const Tensor& x, const Tensor& gamma, const Tensor& beta,
                  float eps = 1e-5f);

/// RMSNorm over the last dimension (no recentering), gamma 1-D.
Tensor rms_norm(const Tensor& x, const Tensor& gamma, float eps = 1e-5f);

// ----- token ops -----

/// Row-gather: out[b,t,:] = weight[ids[b*T+t], :]. `ids` values must lie in
/// [0, vocab). Output shape [batch, seq, dim].
Tensor embedding(const Tensor& weight, const std::vector<std::int32_t>& ids,
                 Index batch, Index seq);

/// Mean cross-entropy between logits [N, V] and target ids (size N).
/// Targets equal to `ignore_index` contribute nothing.
Tensor cross_entropy(const Tensor& logits,
                     const std::vector<std::int32_t>& targets,
                     std::int32_t ignore_index = -1);

/// Index of the maximum along the last dimension (ties -> lowest index).
/// Not differentiable; used by greedy decoding.
std::vector<std::int32_t> argmax_lastdim(const Tensor& a);

/// Differentiable device transfer: the forward pass copies onto `device`,
/// the backward pass copies the gradient back. The cross-GPU activation
/// hop of multi-GPU layer splitting.
Tensor to_device(const Tensor& a, gpusim::Device& device);

}  // namespace menos::tensor
