// Per-client serving session (Algorithm 1 + Fig 4's "serving processes").
//
// Each connected client gets one session. The session owns the client's
// model *structure* (built over the shared ParameterStore in Menos modes,
// or over a private copy in the vanilla baseline), the client's adapter +
// optimizer state, and drives the four-step loop of §2.2 under the memory
// policy of its ServingMode.
//
// Sessions are event-driven state machines, not threads (see
// docs/ARCHITECTURE.md):
//
//   Handshake -> Profiling -> AwaitRequest -> AwaitForwardGrant -> Forward
//        -> AwaitRequest -> AwaitBackwardGrant -> Backward -> AwaitRequest
//        ... -> Parked (link loss under a lease) -> AwaitRequest (resume)
//        ... -> Finished
//
// All transitions run on the session's util::Strand over the server's
// shared core::Executor, so events are serialized per session without a
// per-session thread or lock. Readiness ("a frame may have arrived")
// comes from the server's net::Poller; scheduler grants arrive as strand
// events posted by on_grant. Server concurrency is therefore bounded by
// GPU memory — the paper's resource — not by OS thread count.
#pragma once

#include <atomic>
#include <chrono>
#include <cstdint>
#include <functional>
#include <memory>
#include <optional>
#include <vector>

#include "core/executor.h"
#include "core/parameter_store.h"
#include "core/runtime.h"
#include "mem/offload_engine.h"
#include "net/poller.h"
#include "net/transport.h"
#include "optim/optimizer.h"
#include "util/mutex.h"
#include "util/queue.h"
#include "util/stopwatch.h"
#include "util/thread_annotations.h"

namespace menos::core {

struct BatchGroup;    // core/batch.h
struct BatchOutcome;  // core/batch.h

/// Cached profiling results shared across sessions with identical
/// fine-tuning configurations (the paper profiles each *configuration*
/// once; identical clients reuse the measurement).
class ProfileCache {
 public:
  std::optional<sched::ClientDemands> find(const std::string& key) const;
  void insert(const std::string& key, const sched::ClientDemands& demands);

 private:
  mutable util::Mutex mutex_{"core.profile_cache", 16};
  std::unordered_map<std::string, sched::ClientDemands> cache_
      MENOS_GUARDED_BY(mutex_);
};

/// Everything needed to recreate a live session on another shard
/// (fleet::Fleet drives Server::migrate_out -> Server::migrate_in). The
/// ticket is in-memory only: the client's adapter and optimizer state
/// travel as host-side serialized bytes, while the base model is NOT
/// carried — every shard shares base_seed, so their ParameterStores are
/// bit-identical by construction and only the per-client state moves.
/// The at-least-once bookkeeping (backwards_applied, last_backward_reply,
/// cached_activation) rides along so a replayed iteration on the target
/// shard stays bit-identical to the uninterrupted run.
struct MigrationTicket {
  std::uint64_t token = 0;
  net::FinetuneConfig client_config;
  sched::ClientDemands demands;
  std::vector<std::uint8_t> adapter_blob;  ///< serialize_adapter output
  /// Optimizer state buffers in state_tensors() order, plus the step
  /// counter (Adam's bias correction depends on it).
  std::vector<std::vector<float>> optimizer_state;
  std::int64_t optimizer_steps = 0;
  std::uint64_t backwards_applied = 0;
  net::Message last_backward_reply;
  net::WireTensor cached_activation;
  std::uint64_t resumes = 0;
  std::size_t persistent_bytes = 0;  ///< the A + O scheduler charge
  /// Offload-engine accounting carried across shards (SwapOnIdle only).
  mem::ExportedUnit unit;
  bool had_unit = false;
};

/// Aggregate per-session timing, mirroring the paper's Table 1-3 breakdown
/// (as observed server-side).
struct SessionStats {
  util::RunningStat schedule_wait_s;  ///< request -> grant (Table 3)
  util::RunningStat compute_s;        ///< forward+backward compute (Table 2)
  std::uint64_t iterations = 0;
  std::uint64_t reforwards = 0;  ///< extra forward passes paid by on-demand
  std::uint64_t swaps = 0;       ///< vanilla task swaps (in+out pairs)
};

class ServingSession
    : public std::enable_shared_from_this<ServingSession> {
 public:
  /// Routes a ResumeSession received on a fresh connection to the parked
  /// session holding `token`; returns true once the connection has been
  /// handed over (set by the Server, which owns the session table).
  using ResumeRouter =
      std::function<bool(std::uint64_t token,
                         std::shared_ptr<net::Connection> connection)>;

  /// `offload` is non-null only under Policy::SwapOnIdle (shared modes):
  /// the session registers its A + O as a residency unit at handshake.
  /// `token` is the opaque session identity echoed in HelloAck; a
  /// reconnecting client presents it in ResumeSession (docs/FAULTS.md).
  /// `executor` and `poller` are the server's shared serving core; both
  /// must outlive the session.
  ServingSession(int id, std::uint64_t token,
                 std::unique_ptr<net::Connection> connection,
                 const ServerConfig& config, const ParameterStore* store,
                 const nn::TransformerConfig& model,
                 sched::Scheduler& scheduler,
                 gpusim::DeviceManager& devices,
                 util::Mutex& profiling_mutex, ProfileCache& profile_cache,
                 Executor& executor, net::Poller& poller,
                 mem::OffloadEngine* offload = nullptr);
  ~ServingSession();

  /// Register with the poller and begin consuming events. Must be called
  /// on a shared_ptr-owned session (shared_from_this).
  void start();

  /// Close the connection and post a stop event; the session winds down
  /// through cleanup on its strand and then fires the on_finished hook.
  void request_stop();

  /// Must be set before start() for ResumeSession routing to work; without
  /// it a resume attempt is answered with Error.
  void set_resume_router(ResumeRouter router) {
    resume_router_ = std::move(router);
  }

  /// Invoked (from the strand) exactly once, after the session reaches
  /// Finished — the Server uses it to wake stop() waiters.
  void set_on_finished(std::function<void()> hook) {
    on_finished_ = std::move(hook);
  }

  /// Hand a reconnecting client's fresh connection to this session. Closes
  /// the dead one, refreshes the lease, replies ResumeAck, and posts a
  /// resume event that un-parks the state machine. False if the session
  /// cannot be resumed (leases off, already expired/stopped/finished).
  bool attach(std::shared_ptr<net::Connection> connection);

  /// Reaper hook: expire the session if its lease deadline passed — close
  /// the connection and post an expiry event so the state machine runs
  /// cleanup and releases every byte it holds.
  void expire_if_overdue();

  /// Scheduler grant arrived for this session (posted as a GrantEvent).
  void on_grant(const sched::Grant& grant);

  /// Fused-batch path (Policy::CoalescedBatch, core/batch.h): the
  /// BatchCoordinator asks this member to contribute slot `slot` of
  /// `group`. Posted RAW onto the strand — it must run even for a session
  /// that just finished, so the group's delivery countdown always reaches
  /// zero and the fused pass can never stall on a dead member (the member
  /// simply contributes nothing). The last member to deliver runs the
  /// fused pass inline on its own strand.
  void batch_join(const std::shared_ptr<BatchGroup>& group, std::size_t slot);

  /// The fused pass finished: deliver this member's row slice (or the
  /// group's failure). Posted with the normal event contract — a finished
  /// member ignores it; its scheduler charge was released with the group.
  void batch_complete(BatchOutcome outcome);

  /// Fleet migration, source side. Blocks until the strand runs the export
  /// event, so it must be called OFF the executor (the fleet's migrator
  /// thread) — a worker waiting on its own pool could deadlock. Returns
  /// nullopt if the session is not migratable right now: mid-iteration,
  /// holding an allocation or a live graph, vanilla mode, leases off, or
  /// already finishing. On success the session is finished locally WITHOUT
  /// releasing what the ticket now owns; the client's next frame finds the
  /// link closed and its retry/ResumeSession path replays on the target.
  std::optional<MigrationTicket> export_for_migration();

  /// Fleet migration, target side: rebuild the exported session over THIS
  /// server's store/scheduler. Runs caller-side (no strand activity yet —
  /// the session must not be published before this returns). Throws on
  /// failure (e.g. the shard cannot fit A + O) after rolling back its own
  /// registrations; the ticket stays valid for re-import elsewhere.
  void import_migrated(const MigrationTicket& ticket);

  int id() const noexcept { return id_; }
  std::uint64_t token() const noexcept { return token_; }
  bool lease_enabled() const noexcept { return config_.lease_seconds > 0.0; }
  bool finished() const noexcept { return finished_.load(); }

  /// Times a fresh connection was attached via ResumeSession.
  std::uint64_t resumes() const noexcept { return resumes_.load(); }

  /// Persistent GPU bytes attributable to this client: A + O in shared
  /// modes; the whole task copy in vanilla mode (0 while swapped out).
  std::size_t persistent_gpu_bytes() const;

  SessionStats stats() const;
  const sched::ClientDemands& demands() const noexcept { return demands_; }

 private:
  enum class State : std::uint8_t {
    Handshake,          ///< waiting for the first frame (Hello/Resume)
    Profiling,          ///< measuring M_f / M_b inside handshake()
    AwaitRequest,       ///< idle, watching the connection for a frame
    AwaitForwardGrant,  ///< Forward queued on the scheduler
    Forward,            ///< forward compute in progress (transient)
    AwaitBackwardGrant, ///< Backward queued on the scheduler
    Backward,           ///< backward compute in progress (transient)
    Parked,             ///< link down, lease alive, awaiting resume
    Finished,
  };

  // ----- event plumbing (everything below runs on the strand) -----

  /// Post an event onto the strand with the session kept alive and the
  /// serve loop's error contract applied: an Error escaping the event is
  /// logged, answered with an Error frame, and finishes the session.
  void post_event(std::function<void(ServingSession&)> event);

  /// Drain frames while in a frame-consuming state; rearms the poller
  /// watch once the connection runs Empty.
  void pump();
  void handle_frame(const net::Message& msg);
  void handshake(const net::Message& hello);
  void route_resume(std::uint64_t token);

  void start_forward(const net::Message& msg);
  void finish_forward(const net::Message& msg, double wait_s);
  void start_backward(const net::Message& msg);
  void finish_backward(const net::Message& msg, double wait_s);
  void grant_event();
  void resume_event();
  void stop_event();
  void expire_event();

  /// Strand halves of the fused-batch hooks above.
  void batch_join_event(BatchGroup& group, std::size_t slot);
  void batch_complete_event(BatchOutcome& outcome);

  /// The watched connection died (Closed). Switch to a freshly attached
  /// link, park under a lease, or finish. Returns true when pumping may
  /// continue on a new connection.
  bool handle_link_down();

  /// Strand half of export_for_migration: checks migratability, fills the
  /// ticket, releases this shard's claims, and finishes the session via
  /// finish_migrated (which must NOT double-release what the ticket owns).
  std::optional<MigrationTicket> export_event();
  void finish_migrated();

  /// Terminal transitions. finish_now: the pre-handshake exits that leave
  /// the connection open and skip cleanup (nothing was registered).
  /// finish_session: the full teardown path through cleanup().
  void finish_now();
  void finish_session();
  void fail_session(const std::string& reason);
  void cleanup();

  // ----- poller plumbing -----
  void watch_conn(const std::shared_ptr<net::Connection>& conn);
  void unwatch_conn();
  void rearm_watch();

  bool send_reply(const net::Message& message);

  void touch_lease_locked() MENOS_REQUIRES(conn_mutex_);
  void expire_locked() MENOS_REQUIRES(conn_mutex_);

  /// Profile M_f / M_b (§3.3) with random inputs on the real device.
  sched::ClientDemands profile();
  std::string profile_key() const;

  void release();  ///< hand the live allocation back to the scheduler

  /// Vanilla task-swap helpers (migrate params + optimizer state).
  void swap_to(gpusim::Device& device);

  /// Offload-engine helpers (no-ops unless a unit is registered). Busy
  /// nests; MenosPreserveAll never drops its last nesting level, so its
  /// unit — like its graph — stays pinned for the session's lifetime.
  void register_residency_unit();
  /// Build the unit's move/charge callbacks, snapshotting each tensor's
  /// CURRENT device as its home — so an import must call this before
  /// migrating the freshly built section to host.
  mem::UnitCallbacks make_unit_callbacks();
  void offload_begin_use();
  void offload_end_use();
  void offload_ensure_resident();

  int id_;
  std::uint64_t token_;
  ResumeRouter resume_router_;
  std::function<void()> on_finished_;

  // The live connection table. attach()/request_stop()/the reaper mutate
  // it from foreign threads; the strand snapshots it into serving_conn_.
  mutable util::Mutex conn_mutex_{"core.session.conn", 20};
  std::shared_ptr<net::Connection> connection_ MENOS_GUARDED_BY(conn_mutex_);
  std::chrono::steady_clock::time_point lease_deadline_
      MENOS_GUARDED_BY(conn_mutex_);
  bool expired_ MENOS_GUARDED_BY(conn_mutex_) = false;
  /// Strand-only: the connection the in-flight request arrived on. Replies
  /// go here and never to a connection attached mid-computation.
  std::shared_ptr<net::Connection> serving_conn_;

  ServerConfig config_;
  const ParameterStore* store_;  // null in vanilla mode
  nn::TransformerConfig model_;
  sched::Scheduler* scheduler_;
  gpusim::DeviceManager* devices_;
  gpusim::Device* gpu_;   ///< entry device (first server block's GPU)
  gpusim::Device* host_;
  util::Mutex* profiling_mutex_;  // owned by the Server; serializes profiling
  ProfileCache* profile_cache_;
  Executor* executor_;
  net::Poller* poller_;
  mem::OffloadEngine* offload_;   // owned by the Server; null unless SwapOnIdle

  net::FinetuneConfig client_config_;
  /// Heterogeneity profile shorthands, validated + latched at handshake /
  /// import (strand only). frozen_: SplitFrozen — the client half is
  /// frozen, so backward never materializes (or ships) an activation
  /// gradient at the cut. codec_: wire encoding for this session's
  /// activation payloads in both directions.
  bool frozen_ = false;
  ActivationCodec codec_ = ActivationCodec::None;
  /// Coalescing compatibility key (0 = never coalesce), computed at
  /// handshake/import and registered with the scheduler. Strand only.
  std::uint64_t batch_key_ = 0;
  std::unique_ptr<nn::ServerSection> section_;
  std::unique_ptr<optim::Optimizer> optimizer_;
  sched::ClientDemands demands_;
  /// A + O reserved on the scheduler (shared modes). Atomic because
  /// persistent_gpu_bytes() reads it from introspection threads.
  std::atomic<std::size_t> persistent_bytes_{0};
  std::atomic<std::size_t> task_bytes_{0};  ///< vanilla: M_copy + A + O
  /// True once the A + O residency unit is registered with the offload
  /// engine (read by persistent_gpu_bytes from other threads).
  std::atomic<bool> unit_registered_{false};

  std::atomic<bool> stop_requested_{false};
  bool holding_allocation_ = false;        // strand only
  std::atomic<bool> on_gpu_{true};

  // ----- state machine (strand only) -----
  State state_ = State::Handshake;
  util::Strand strand_;
  std::uint64_t watch_token_ = 0;          // 0 = not watching
  net::Message pending_msg_;               ///< request awaiting its grant
  util::Stopwatch wait_sw_;                ///< request -> grant timing

  // At-least-once delivery bookkeeping (docs/FAULTS.md): count of applied
  // backward steps, and — when leases are enabled — the last BackwardResult
  // so a resumed client resending a Backward whose reply was lost gets the
  // cached result instead of a double optimizer step.
  std::atomic<std::uint64_t> backwards_applied_{0};
  net::Message last_backward_reply_;  // strand only
  std::atomic<std::uint64_t> resumes_{0};

  // Iteration state for modes that hold the graph across fwd -> bwd.
  tensor::Tensor held_input_;
  tensor::Tensor held_output_;
  // Cached activations x_c for the on-demand re-forward (host-side copy;
  // "we just need to cache the forward activations for the re-forward
  // computation, which is negligible" — §3.2).
  net::WireTensor cached_activation_;

  mutable util::Mutex stats_mutex_{"core.session.stats", 22};
  SessionStats stats_ MENOS_GUARDED_BY(stats_mutex_);

  std::atomic<bool> finished_{false};
};

}  // namespace menos::core
