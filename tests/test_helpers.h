// Shared test utilities: device fixtures and a numerical gradient checker.
#pragma once

#include <cmath>
#include <functional>
#include <memory>
#include <string>
#include <utility>
#include <vector>

#include <gtest/gtest.h>

#include "gpusim/device.h"
#include "tensor/ops.h"
#include "util/rng.h"

namespace menos::testing {

/// A host device per test (unlimited, still metered).
inline gpusim::Device& host_device() {
  static auto device = gpusim::make_host_device("test-host");
  return *device;
}

/// Fixture for tests that create sim devices: TearDown asserts every
/// device this fixture handed out ends the test with allocated() == 0, so
/// a test that loses track of a single byte fails by name instead of
/// silently skewing the next measurement. In Debug builds the devices are
/// additionally audit-wrapped (MENOS_AUDIT_ALLOC), which upgrades the
/// failure to a per-tag leak table.
class DeviceTest : public ::testing::Test {
 protected:
  gpusim::Device& make_gpu(std::string name, std::size_t capacity_bytes) {
    devices_.push_back(gpusim::make_sim_gpu(std::move(name), capacity_bytes));
    return *devices_.back();
  }

  gpusim::Device& make_host(std::string name = "host") {
    devices_.push_back(gpusim::make_host_device(std::move(name)));
    return *devices_.back();
  }

  void TearDown() override {
    for (const auto& d : devices_) {
      EXPECT_EQ(d->allocated(), 0u)
          << "device '" << d->name()
          << "' ends the test with live bytes — every allocation in a test "
             "must be returned before it finishes";
      // With MENOS_CACHING_ALLOC a pooling layer may hold idle segments;
      // once everything is freed, flushing it must return every byte to
      // the metered inner device.
      d->empty_cache();
      EXPECT_EQ(d->cached(), 0u)
          << "device '" << d->name()
          << "' still holds cached bytes after empty_cache()";
    }
  }

  std::vector<std::unique_ptr<gpusim::Device>> devices_;
};

/// Compare an analytic backward pass against central finite differences.
///
/// `make_loss` must rebuild the forward computation from the current
/// contents of `inputs` and return a scalar tensor. Each input must be a
/// leaf with requires_grad = true.
inline void check_gradients(const std::function<tensor::Tensor()>& make_loss,
                            std::vector<tensor::Tensor> inputs,
                            float eps = 1e-2f, float rel_tol = 4e-2f,
                            float abs_tol = 2e-3f) {
  using tensor::Tensor;

  // Analytic gradients.
  for (Tensor& t : inputs) {
    ASSERT_TRUE(t.requires_grad());
    t.zero_grad();
  }
  Tensor loss = make_loss();
  ASSERT_EQ(loss.numel(), 1);
  tensor::backward(loss);

  std::vector<std::vector<float>> analytic;
  for (Tensor& t : inputs) {
    Tensor g = t.grad();
    ASSERT_TRUE(g.defined()) << "no gradient reached an input";
    analytic.push_back(g.to_vector());
  }

  // Numerical gradients, one coordinate at a time.
  tensor::NoGradGuard no_grad;
  for (std::size_t which = 0; which < inputs.size(); ++which) {
    Tensor& t = inputs[which];
    float* data = t.data();
    for (tensor::Index i = 0; i < t.numel(); ++i) {
      const float original = data[i];
      data[i] = original + eps;
      const float up = make_loss().item();
      data[i] = original - eps;
      const float down = make_loss().item();
      data[i] = original;
      const float numeric = (up - down) / (2.0f * eps);
      const float exact = analytic[which][static_cast<std::size_t>(i)];
      const float err = std::fabs(numeric - exact);
      const float scale = std::max(std::fabs(numeric), std::fabs(exact));
      EXPECT_LE(err, abs_tol + rel_tol * scale)
          << "input " << which << " coordinate " << i << ": analytic "
          << exact << " vs numeric " << numeric;
    }
  }
}

/// Random leaf tensor helper.
inline tensor::Tensor random_leaf(tensor::Shape shape, util::Rng& rng,
                                  gpusim::Device& device, float stddev = 0.5f) {
  tensor::Tensor t = tensor::Tensor::empty(std::move(shape), device);
  rng.fill_normal(t.data(), static_cast<std::size_t>(t.numel()), stddev);
  t.set_requires_grad(true);
  return t;
}

}  // namespace menos::testing
