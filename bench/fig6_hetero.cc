// Heterogeneous-population round time and fairness vs scheduling policy
// (docs/ARCHITECTURE.md "Straggler-aware scheduling").
//
// A mixed population — slow shallow-cut devices, fast deep-cut devices, a
// lossy link, an Int8-codec thin link — shares one GPU in the
// hold-across-iteration serving mode, where a slow client's think time
// holds its server allocation. The sweep drives the REAL sched::Scheduler
// through the discrete-event sim (virtual clock injected via
// Scheduler::set_clock, so StragglerAware classifies on simulated
// seconds) and reports, per policy:
//
//   * mean round time over the population (raw seconds);
//   * mean SLOWDOWN — each client's round time normalized by its own
//     solo-run round time, the heterogeneity-aware round-time metric (a
//     slow device is not "unfairly treated" for being slow);
//   * Jain's fairness index over those per-client slowdowns.
//
// Everything is deterministic (virtual time, no host clocks), so the
// floor check is exact run-to-run. Emits BENCH_hetero.json (or argv[1]).
// With `--check-floor <x>` the process exits 1 unless StragglerAware
// beats strict FCFS by >= x on mean slowdown at equal-or-better Jain
// fairness (epsilon 0.01) — the CI regression gate for the
// heterogeneous-client path.
#include <cstdio>
#include <cstdlib>
#include <cstring>
#include <string>
#include <vector>

#include "sim/split_sim.h"

namespace {

using namespace menos;

struct ClientClass {
  const char* label;
  double mem_scale;      // cut depth: server share of memory + compute
  double compute_scale;  // client device speed (think-time multiplier)
  double net_scale;      // link multiplier on WAN transfer times
};

// The population: four stragglers with DIFFERENT speeds (their hold cycles
// precess against each other, so head-of-line collisions keep happening
// instead of phase-locking away), eight fast deep-cut clients, plus one
// fast client on a lossy link (~2.5x retransmission inflation) and one on
// a thin link with the Int8 activation codec (8x thinner link, ~1/4 the
// bytes). Stragglers cut shallow (mem_scale 1.0 — the full backward
// footprint lands on the server), fast clients cut deep (0.1).
std::vector<ClientClass> population() {
  std::vector<ClientClass> p;
  p.push_back({"slow-shallow", 1.0, 12.0, 1.0});
  p.push_back({"slow-shallow", 1.0, 10.0, 1.0});
  p.push_back({"slow-shallow", 1.0, 8.0, 1.0});
  p.push_back({"slow-shallow", 1.0, 7.0, 1.0});
  for (int i = 0; i < 8; ++i) p.push_back({"fast-deep", 0.1, 1.0, 1.0});
  p.push_back({"fast-lossy", 0.1, 1.0, 2.5});
  p.push_back({"fast-int8-thin", 0.1, 1.0, 2.0});
  return p;
}

sim::SimConfig base_config(const std::vector<ClientClass>& pop) {
  sim::SimConfig cfg;
  cfg.spec = sim::ModelSpec::opt_1_3b();
  // Good links are metro-WAN class; per-client multipliers degrade them.
  cfg.env.wan_bandwidth_bytes_per_s = 40.0e6;
  cfg.env.wan_latency_s = 0.01;
  // Hold-across-iteration mode: the allocation spans forward -> backward,
  // so a straggler's think time occupies the pool — the regime the
  // straggler-aware policy exists for.
  cfg.mode = core::ServingMode::MenosReleaseAfterBackward;
  cfg.num_clients = static_cast<int>(pop.size());
  cfg.iterations = 40;
  cfg.client_stagger_s = 0.05;
  for (const ClientClass& c : pop) {
    cfg.client_scale.push_back(c.mem_scale);
    cfg.client_compute_scale.push_back(c.compute_scale);
    cfg.client_net_scale.push_back(c.net_scale);
  }
  // Size the GPU so the schedulable pool fits ONE straggler hold plus two
  // fast holds, but never two stragglers at once: a straggler request at
  // the head of a strict-FCFS queue then pins every fast client behind it
  // for the other straggler's whole hold, while backfill/straggler-aware
  // let the small fast requests flow past it.
  const sim::ModelSpec& s = cfg.spec;
  const std::size_t base = s.server_param_bytes + s.context_bytes;
  const std::size_t state =
      (s.adapter_opt_bytes + s.context_bytes) * pop.size();
  const std::size_t pool = s.bwd_bytes + s.bwd_bytes / 5;  // 1.2x M_b
  cfg.env.gpu_capacity_bytes = base + state + pool;
  return cfg;
}

struct PolicyResult {
  const char* name = "";
  sim::SimResult sim;
  std::vector<double> round_s;     // per-client mean round time
  std::vector<double> slowdown;    // round_s / solo round_s
  double mean_round_s = 0.0;
  double mean_slowdown = 0.0;
  double jain_slowdown = 0.0;
};

PolicyResult run_policy(const char* name, sched::Policy policy,
                        const std::vector<ClientClass>& pop,
                        const std::vector<double>& solo_round_s) {
  sim::SimConfig cfg = base_config(pop);
  cfg.sched_policy = policy;
  PolicyResult r;
  r.name = name;
  r.sim = sim::run_split_finetune(cfg);
  if (!r.sim.feasible) {
    std::fprintf(stderr, "fig6_hetero: %s infeasible: %s\n", name,
                 r.sim.infeasible_reason.c_str());
    std::exit(1);
  }
  double sum_round = 0.0, sum_sd = 0.0, sum_sd_sq = 0.0;
  for (std::size_t i = 0; i < r.sim.clients.size(); ++i) {
    const double round = r.sim.clients[i].iteration_s.mean();
    const double sd = round / solo_round_s[i];
    r.round_s.push_back(round);
    r.slowdown.push_back(sd);
    sum_round += round;
    sum_sd += sd;
    sum_sd_sq += sd * sd;
  }
  const double n = static_cast<double>(r.round_s.size());
  r.mean_round_s = sum_round / n;
  r.mean_slowdown = sum_sd / n;
  r.jain_slowdown = sum_sd * sum_sd / (n * sum_sd_sq);
  return r;
}

}  // namespace

int main(int argc, char** argv) {
  std::string out_path = "BENCH_hetero.json";
  double floor = 0.0;
  for (int i = 1; i < argc; ++i) {
    if (std::strcmp(argv[i], "--check-floor") == 0 && i + 1 < argc) {
      floor = std::atof(argv[++i]);
    } else {
      out_path = argv[i];
    }
  }

  const std::vector<ClientClass> pop = population();

  // Solo calibration: each client's profile alone on the server — the
  // denominator of its slowdown. Policy is irrelevant without contention.
  std::vector<double> solo_round_s;
  for (const ClientClass& c : pop) {
    sim::SimConfig cfg = base_config(pop);
    cfg.num_clients = 1;
    cfg.client_scale = {c.mem_scale};
    cfg.client_compute_scale = {c.compute_scale};
    cfg.client_net_scale = {c.net_scale};
    const sim::SimResult solo = sim::run_split_finetune(cfg);
    if (!solo.feasible) {
      std::fprintf(stderr, "fig6_hetero: solo run infeasible: %s\n",
                   solo.infeasible_reason.c_str());
      return 1;
    }
    solo_round_s.push_back(solo.clients[0].iteration_s.mean());
  }

  std::vector<PolicyResult> results;
  results.push_back(
      run_policy("fcfs", sched::Policy::FcfsOnly, pop, solo_round_s));
  results.push_back(run_policy("fcfs_backfill", sched::Policy::FcfsBackfill,
                               pop, solo_round_s));
  results.push_back(run_policy("straggler_aware",
                               sched::Policy::StragglerAware, pop,
                               solo_round_s));

  for (const PolicyResult& r : results) {
    std::printf(
        "%-16s mean round %7.3f s   mean slowdown %6.3f   jain %5.3f   "
        "(blocked %llu, backfill %llu, reorders %llu, promotions %llu)\n",
        r.name, r.mean_round_s, r.mean_slowdown, r.jain_slowdown,
        static_cast<unsigned long long>(r.sim.sched_stats.blocked_cycles),
        static_cast<unsigned long long>(r.sim.sched_stats.backfill_grants),
        static_cast<unsigned long long>(r.sim.sched_stats.straggler_reorders),
        static_cast<unsigned long long>(
            r.sim.sched_stats.straggler_promotions));
  }
  const PolicyResult& fcfs = results[0];
  const PolicyResult& sa = results[2];
  const double speedup = fcfs.mean_slowdown / sa.mean_slowdown;
  const double raw_speedup = fcfs.mean_round_s / sa.mean_round_s;
  std::printf(
      "straggler_aware vs fcfs: %.3fx on mean slowdown (%.3fx raw), jain "
      "%+.4f\n",
      speedup, raw_speedup, sa.jain_slowdown - fcfs.jain_slowdown);

  std::FILE* f = std::fopen(out_path.c_str(), "w");
  if (f == nullptr) {
    std::fprintf(stderr, "cannot open %s for writing\n", out_path.c_str());
    return 1;
  }
  std::fprintf(f, "{\n  \"bench\": \"fig6_hetero\",\n");
  std::fprintf(f, "  \"population\": [\n");
  for (std::size_t i = 0; i < pop.size(); ++i) {
    std::fprintf(f,
                 "    {\"client\": %zu, \"class\": \"%s\", \"mem_scale\": "
                 "%.2f, \"compute_scale\": %.1f, \"net_scale\": %.2f, "
                 "\"solo_round_s\": %.4f}%s\n",
                 i, pop[i].label, pop[i].mem_scale, pop[i].compute_scale,
                 pop[i].net_scale, solo_round_s[i],
                 i + 1 < pop.size() ? "," : "");
  }
  std::fprintf(f, "  ],\n  \"policies\": [\n");
  for (std::size_t p = 0; p < results.size(); ++p) {
    const PolicyResult& r = results[p];
    std::fprintf(f,
                 "    {\"policy\": \"%s\", \"mean_round_s\": %.4f, "
                 "\"mean_slowdown\": %.4f, \"jain_slowdown\": %.4f,\n",
                 r.name, r.mean_round_s, r.mean_slowdown, r.jain_slowdown);
    std::fprintf(f, "     \"per_client_round_s\": [");
    for (std::size_t i = 0; i < r.round_s.size(); ++i) {
      std::fprintf(f, "%.4f%s", r.round_s[i],
                   i + 1 < r.round_s.size() ? ", " : "");
    }
    std::fprintf(f, "],\n     \"per_client_slowdown\": [");
    for (std::size_t i = 0; i < r.slowdown.size(); ++i) {
      std::fprintf(f, "%.4f%s", r.slowdown[i],
                   i + 1 < r.slowdown.size() ? ", " : "");
    }
    std::fprintf(
        f,
        "],\n     \"blocked_cycles\": %llu, \"backfill_grants\": %llu, "
        "\"straggler_reorders\": %llu, \"straggler_promotions\": %llu}%s\n",
        static_cast<unsigned long long>(r.sim.sched_stats.blocked_cycles),
        static_cast<unsigned long long>(r.sim.sched_stats.backfill_grants),
        static_cast<unsigned long long>(r.sim.sched_stats.straggler_reorders),
        static_cast<unsigned long long>(r.sim.sched_stats.straggler_promotions),
        p + 1 < results.size() ? "," : "");
  }
  std::fprintf(f, "  ],\n");
  std::fprintf(f, "  \"speedup_mean_slowdown\": %.4f,\n", speedup);
  std::fprintf(f, "  \"speedup_mean_round\": %.4f\n}\n", raw_speedup);
  std::fclose(f);
  std::printf("wrote %s\n", out_path.c_str());

  if (floor > 0.0) {
    if (speedup < floor) {
      std::fprintf(stderr,
                   "FAIL: straggler_aware speedup %.3fx on mean slowdown is "
                   "below the floor %.2fx\n",
                   speedup, floor);
      return 1;
    }
    if (sa.jain_slowdown < fcfs.jain_slowdown - 0.01) {
      std::fprintf(stderr,
                   "FAIL: straggler_aware jain %.4f is worse than fcfs %.4f "
                   "beyond epsilon 0.01\n",
                   sa.jain_slowdown, fcfs.jain_slowdown);
      return 1;
    }
    std::printf("floor check passed: %.3fx >= %.2fx, jain %.4f vs %.4f\n",
                speedup, floor, sa.jain_slowdown, fcfs.jain_slowdown);
  }
  return 0;
}
