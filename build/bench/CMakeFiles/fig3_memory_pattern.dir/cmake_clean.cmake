file(REMOVE_RECURSE
  "CMakeFiles/fig3_memory_pattern.dir/fig3_memory_pattern.cc.o"
  "CMakeFiles/fig3_memory_pattern.dir/fig3_memory_pattern.cc.o.d"
  "fig3_memory_pattern"
  "fig3_memory_pattern.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/fig3_memory_pattern.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
