# Empty dependencies file for menos_sim.
# This may be replaced when dependencies are built.
