// Dense float32 tensors with reverse-mode autograd, allocated on metered
// gpusim devices.
//
// Every byte a Tensor holds is accounted against its Device, so the Menos
// runtime's memory behaviour (what is resident between the forward and
// backward passes, what a no-grad forward saves, what releasing the graph
// frees) is directly observable — the property the paper's §3.2 relies on.
//
// Grad bookkeeping mirrors the PyTorch tape model at a much smaller scale:
// ops executed while grad mode is on and any input requires grad attach a
// Node capturing the saved activations; tensor::backward(loss) runs the
// tape. Running under NoGradGuard attaches nothing — that is exactly the
// "first forward in a non-gradient environment" of Fig 3(d).
#pragma once

#include <cstdint>
#include <functional>
#include <memory>
#include <string>
#include <vector>

#include "gpusim/device.h"
#include "util/check.h"

namespace menos::tensor {

using Index = std::int64_t;
using Shape = std::vector<Index>;

/// Number of elements described by a shape.
Index numel_of(const Shape& shape);

/// "[2, 3, 4]" — for error messages.
std::string shape_to_string(const Shape& shape);

/// RAII float buffer on a Device. Shared between tensor views (reshape) and
/// between per-client model instances (the base-model sharing of §3.1).
class Storage {
 public:
  Storage(gpusim::Device& device, Index numel);
  ~Storage();
  Storage(const Storage&) = delete;
  Storage& operator=(const Storage&) = delete;

  float* data() noexcept { return data_; }
  const float* data() const noexcept { return data_; }
  Index numel() const noexcept { return numel_; }
  std::size_t bytes() const noexcept {
    return static_cast<std::size_t>(numel_) * sizeof(float);
  }
  gpusim::Device& device() const noexcept { return *device_; }

 private:
  gpusim::Device* device_;
  float* data_;
  Index numel_;
};

class Node;  // autograd.h

/// Reference-counted tensor state. Use the Tensor handle below.
class TensorImpl {
 public:
  TensorImpl(std::shared_ptr<Storage> storage, Shape shape, bool requires_grad);

  std::shared_ptr<Storage> storage;
  Shape shape;
  bool requires_grad = false;

  /// Accumulated gradient; null until backward reaches this tensor.
  std::shared_ptr<TensorImpl> grad;

  /// Producing op on the tape; null for leaves.
  std::shared_ptr<Node> grad_fn;
};

/// Value-semantic handle to a TensorImpl (copies alias the same data).
class Tensor {
 public:
  Tensor() = default;
  explicit Tensor(std::shared_ptr<TensorImpl> impl) : impl_(std::move(impl)) {}

  // ----- factories -----
  static Tensor empty(Shape shape, gpusim::Device& device,
                      bool requires_grad = false);
  static Tensor zeros(Shape shape, gpusim::Device& device,
                      bool requires_grad = false);
  static Tensor full(Shape shape, float value, gpusim::Device& device,
                     bool requires_grad = false);
  static Tensor from_span(const float* data, Index n, Shape shape,
                          gpusim::Device& device, bool requires_grad = false);
  static Tensor from_vector(const std::vector<float>& data, Shape shape,
                            gpusim::Device& device, bool requires_grad = false);
  /// Scalar tensor of shape {1}.
  static Tensor scalar(float value, gpusim::Device& device);

  // ----- basic accessors -----
  bool defined() const noexcept { return impl_ != nullptr; }
  const Shape& shape() const;
  int ndim() const { return static_cast<int>(shape().size()); }
  Index dim(int i) const;
  Index numel() const;
  std::size_t bytes() const;
  float* data();
  const float* data() const;
  gpusim::Device& device() const;
  float item() const;  ///< precondition: numel() == 1
  std::vector<float> to_vector() const;

  // ----- autograd surface -----
  bool requires_grad() const;
  void set_requires_grad(bool value);
  Tensor grad() const;  ///< undefined Tensor if no grad accumulated
  void zero_grad();     ///< drop the accumulated gradient (frees its memory)

  /// Same storage and shape, detached from the tape.
  Tensor detach() const;

  /// Deep copy (new storage on the same device), detached.
  Tensor clone() const;

  /// Deep copy onto another device.
  Tensor to(gpusim::Device& device) const;

  /// Move this tensor's storage to another device IN PLACE: every handle
  /// and module sharing this tensor sees the data on the new device. This
  /// is the host<->GPU task-swap primitive of the vanilla baseline (§5.1).
  /// No-op if already there. Must not be called on tape members.
  void migrate(gpusim::Device& device);

  /// Overwrite contents from another tensor of identical numel (any device).
  void copy_from(const Tensor& src);

  std::shared_ptr<TensorImpl> impl() const { return impl_; }

 private:
  std::shared_ptr<TensorImpl> impl_;
};

/// Thread-local gradient mode. Default: enabled.
bool grad_enabled() noexcept;

/// RAII guard disabling gradient tracking on this thread — the primitive
/// behind Menos' no-grad first forward pass.
class NoGradGuard {
 public:
  NoGradGuard();
  ~NoGradGuard();
  NoGradGuard(const NoGradGuard&) = delete;
  NoGradGuard& operator=(const NoGradGuard&) = delete;

 private:
  bool previous_;
};

}  // namespace menos::tensor
