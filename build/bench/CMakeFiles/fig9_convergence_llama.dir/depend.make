# Empty dependencies file for fig9_convergence_llama.
# This may be replaced when dependencies are built.
