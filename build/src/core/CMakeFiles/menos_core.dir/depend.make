# Empty dependencies file for menos_core.
# This may be replaced when dependencies are built.
