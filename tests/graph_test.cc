// StepGraph capture/replay: the captured per-step op graph must reproduce
// eager execution bit-exactly over a full training run (loss curve AND
// weights), fuse the elementwise chains it promises, fall back to eager on
// anything it cannot replay, and feed the caching allocator a usable
// activation plan.
#include <gtest/gtest.h>

#include <cmath>
#include <cstring>
#include <memory>
#include <string>
#include <vector>

#include "data/dataset.h"
#include "gpusim/audit.h"
#include "mem/caching_allocator.h"
#include "nn/transformer.h"
#include "optim/optimizer.h"
#include "quant/quantize.h"
#include "tensor/graph.h"
#include "tensor/ops.h"
#include "test_helpers.h"

namespace menos {
namespace {

using tensor::Tensor;

nn::TransformerConfig gtest_model(nn::ModelFamily family) {
  nn::TransformerConfig c = family == nn::ModelFamily::Opt
                                ? nn::TransformerConfig::tiny_opt()
                                : nn::TransformerConfig::tiny_llama();
  c.dim = 32;
  c.n_heads = 2;
  c.ffn_hidden = 64;
  c.n_layers = 2;
  c.max_seq = 32;
  return c;
}

/// A finished training run. The device member is declared first so it
/// outlives the model (whose tensors free into it).
struct TrainRun {
  std::unique_ptr<gpusim::Device> owned_device;
  std::unique_ptr<nn::LocalModel> model;
  std::vector<float> losses;
};

/// Run `steps` optimizer steps; `stepped` switches between plain loss()
/// and the captured-graph loss_stepped() path. If `device` is null a host
/// device is created and owned by the returned TrainRun.
TrainRun train(nn::ModelFamily family, nn::AdapterType adapter_type,
               int steps, bool stepped, gpusim::Device* device = nullptr) {
  TrainRun run;
  if (device == nullptr) {
    run.owned_device = gpusim::make_host_device();
    device = run.owned_device.get();
  }
  nn::FreshInit init(42);
  nn::AdapterSpec adapter;
  adapter.type = adapter_type;
  adapter.rank = 4;
  adapter.alpha = 8.0f;
  nn::SplitSpec split;
  run.model = std::make_unique<nn::LocalModel>(gtest_model(family), split,
                                               adapter, init, *device, 9);
  auto optimizer = optim::make_optimizer(
      optim::OptimizerKind::Adam, run.model->trainable_parameters(), 3e-3f);
  data::CharTokenizer tok;
  auto tokens = tok.encode(data::make_shakespeare_like(3000, 17).text);
  data::DataLoader loader(std::move(tokens), 2, 8, 5);
  for (int i = 0; i < steps; ++i) {
    data::Batch batch = loader.next();
    Tensor loss = stepped ? run.model->loss_stepped(batch.inputs,
                                                    batch.targets, 2, 8)
                          : run.model->loss(batch.inputs, batch.targets, 2, 8);
    run.losses.push_back(loss.item());
    tensor::backward(loss);
    optimizer->step();
    optimizer->zero_grad();
  }
  return run;
}

void expect_same_curve(const std::vector<float>& eager,
                       const std::vector<float>& stepped) {
  ASSERT_EQ(eager.size(), stepped.size());
  for (std::size_t i = 0; i < eager.size(); ++i) {
    ASSERT_EQ(eager[i], stepped[i])
        << "loss diverges from eager at step " << i;
  }
}

TEST(StepGraph, ReplayReproducesEagerTrainingBitExactlyOpt) {
  // Weight updates feed back into later steps, so ten identical losses
  // mean capture, fusion, feed rebinding AND backward all match eager
  // bit-for-bit — one wrong ULP anywhere diverges the curve immediately.
  TrainRun eager = train(nn::ModelFamily::Opt, nn::AdapterType::Lora, 10,
                         /*stepped=*/false);
  TrainRun stepped = train(nn::ModelFamily::Opt, nn::AdapterType::Lora, 10,
                           /*stepped=*/true);
  ASSERT_TRUE(stepped.model->step_graph().ready())
      << "capture failed: " << stepped.model->step_graph().failure_reason();
  expect_same_curve(eager.losses, stepped.losses);
  // The OPT block is gelu-MLP + pre-LN residuals: both fusion patterns
  // must have fired.
  EXPECT_GT(stepped.model->step_graph().fused_chains(), 0);
  EXPECT_GT(stepped.model->step_graph().size(), 0u);
  EXPECT_FALSE(stepped.model->step_graph().cost_report().empty());
}

TEST(StepGraph, ReplayReproducesEagerTrainingBitExactlyLlama) {
  TrainRun eager = train(nn::ModelFamily::Llama, nn::AdapterType::Lora, 8,
                         /*stepped=*/false);
  TrainRun stepped = train(nn::ModelFamily::Llama, nn::AdapterType::Lora, 8,
                           /*stepped=*/true);
  ASSERT_TRUE(stepped.model->step_graph().ready())
      << "capture failed: " << stepped.model->step_graph().failure_reason();
  expect_same_curve(eager.losses, stepped.losses);
}

TEST(StepGraph, PrefixAdapterCapturesAndReplaysBitExactly) {
  // tile_batch is a public replayable op (it used to be a bespoke tape
  // node that poisoned capture): prefix-adapter models must capture like
  // any other and replay the whole training run bit-for-bit.
  TrainRun eager = train(nn::ModelFamily::Opt, nn::AdapterType::Prefix, 5,
                         /*stepped=*/false);
  TrainRun stepped = train(nn::ModelFamily::Opt, nn::AdapterType::Prefix, 5,
                           /*stepped=*/true);
  ASSERT_TRUE(stepped.model->step_graph().ready())
      << "capture failed: " << stepped.model->step_graph().failure_reason();
  expect_same_curve(eager.losses, stepped.losses);
}

TEST(StepGraph, GroupedQueryAttentionCapturesAndReplaysBitExactly) {
  // Same story for repeat_heads: a GQA model (fewer kv heads than query
  // heads) expands K/V through a replayable op now, so capture succeeds
  // and the curve stays bit-identical to eager.
  auto device = gpusim::make_host_device();
  nn::TransformerConfig config = gtest_model(nn::ModelFamily::Llama);
  config.n_kv_heads = 1;  // n_heads = 2 -> repeat factor 2
  nn::AdapterSpec adapter;
  adapter.type = nn::AdapterType::Lora;
  adapter.rank = 4;
  adapter.alpha = 8.0f;
  nn::SplitSpec split;
  const auto run_gqa = [&](bool stepped) {
    TrainRun run;
    nn::FreshInit init(42);
    run.model = std::make_unique<nn::LocalModel>(config, split, adapter, init,
                                                 *device, 9);
    auto optimizer = optim::make_optimizer(
        optim::OptimizerKind::Adam, run.model->trainable_parameters(), 3e-3f);
    data::CharTokenizer tok;
    auto tokens = tok.encode(data::make_shakespeare_like(3000, 17).text);
    data::DataLoader loader(std::move(tokens), 2, 8, 5);
    for (int i = 0; i < 6; ++i) {
      data::Batch batch = loader.next();
      Tensor loss = stepped ? run.model->loss_stepped(batch.inputs,
                                                      batch.targets, 2, 8)
                            : run.model->loss(batch.inputs, batch.targets,
                                              2, 8);
      run.losses.push_back(loss.item());
      tensor::backward(loss);
      optimizer->step();
      optimizer->zero_grad();
    }
    return run;
  };
  TrainRun eager = run_gqa(/*stepped=*/false);
  TrainRun stepped = run_gqa(/*stepped=*/true);
  ASSERT_TRUE(stepped.model->step_graph().ready())
      << "capture failed: " << stepped.model->step_graph().failure_reason();
  expect_same_curve(eager.losses, stepped.losses);
}

TEST(StepGraph, QuantizedMatmulCapturesAndReplaysBitExactly) {
  // quantized_matmul used to poison capture via note_unsupported; it now
  // records itself through note_custom, and replay re-dispatches the op so
  // its bespoke activation-gradient tape is rebuilt each step. Training
  // with in-place weight updates feeding later steps pins replay (forward
  // AND backward) to the eager run bit-for-bit.
  auto host = gpusim::make_host_device();
  util::Rng wrng(11);
  Tensor w_f = menos::testing::random_leaf({8, 16}, wrng, *host);
  w_f.set_requires_grad(false);
  const quant::QuantizedTensor w =
      quant::QuantizedTensor::quantize(w_f, quant::Scheme::Int8Rowwise, *host);

  tensor::graph::StepGraph graph;
  const auto run = [&](bool stepped) {
    util::Rng rng(12);
    Tensor a = menos::testing::random_leaf({4, 8}, rng, *host);
    const tensor::graph::Feeds no_feeds;
    std::vector<float> losses;
    for (int i = 0; i < 6; ++i) {
      const auto step = [&] {
        return tensor::sum(quant::quantized_matmul(tensor::gelu(a), w));
      };
      Tensor loss;
      if (!stepped) {
        loss = step();
      } else if (!graph.ready()) {
        loss = graph.capture(no_feeds, step);
        EXPECT_TRUE(graph.ready()) << graph.failure_reason();
      } else {
        loss = graph.replay(no_feeds);
      }
      losses.push_back(loss.item());
      tensor::backward(loss);
      Tensor g = a.grad();
      EXPECT_TRUE(g.defined());
      float* p = a.data();
      const float* pg = g.data();
      for (tensor::Index k = 0; k < a.numel(); ++k) p[k] -= 0.05f * pg[k];
      a.zero_grad();
    }
    return losses;
  };
  const std::vector<float> eager = run(/*stepped=*/false);
  const std::vector<float> stepped = run(/*stepped=*/true);
  expect_same_curve(eager, stepped);
  // The custom node shows up in cost attribution under its own name.
  bool attributed = false;
  for (const auto& cost : graph.cost_report()) {
    if (std::string(cost.name) == "quantized_matmul") attributed = true;
  }
  EXPECT_TRUE(attributed);
}

TEST(StepGraph, DisabledDropoutDoesNotPoisonCapture) {
  // p == 0 dropout is the identity and consumes no rng state; it must not
  // call note_unsupported, or any model with a (disabled) dropout layer
  // would permanently fall back to eager execution.
  auto host = gpusim::make_host_device();
  tensor::graph::StepGraph graph;
  util::Rng rng(6);
  Tensor a = menos::testing::random_leaf({4, 8}, rng, *host);
  util::Rng drop_rng(7);
  const tensor::graph::Feeds no_feeds;
  Tensor out = graph.capture(no_feeds, [&] {
    return tensor::sum(tensor::dropout(a, 0.0f, drop_rng));
  });
  ASSERT_TRUE(graph.ready()) << graph.failure_reason();
  Tensor replayed = graph.replay(no_feeds);
  EXPECT_EQ(replayed.item(), out.item());
}

TEST(StepGraph, ActiveDropoutStillFallsBackToEager) {
  // p > 0 consumes rng state the graph cannot reproduce: capture must
  // refuse (naming dropout), while the eager result is still returned.
  auto host = gpusim::make_host_device();
  tensor::graph::StepGraph graph;
  util::Rng rng(8);
  Tensor a = menos::testing::random_leaf({4, 8}, rng, *host);
  util::Rng drop_rng(9);
  const tensor::graph::Feeds no_feeds;
  Tensor out = graph.capture(no_feeds, [&] {
    return tensor::sum(tensor::dropout(a, 0.5f, drop_rng));
  });
  EXPECT_TRUE(out.defined());
  EXPECT_FALSE(graph.ready());
  EXPECT_STREQ(graph.failure_reason(), "dropout");
}

TEST(StepGraph, CaptureWithoutGradModeStaysEagerAndReportsWhy) {
  auto host = gpusim::make_host_device();
  tensor::graph::StepGraph graph;
  util::Rng rng(3);
  Tensor a = menos::testing::random_leaf({4, 8}, rng, *host);
  tensor::NoGradGuard no_grad;
  const tensor::graph::Feeds no_feeds;
  Tensor out = graph.capture(no_feeds, [&] { return tensor::sum(a); });
  EXPECT_TRUE(out.defined());
  EXPECT_FALSE(graph.ready());
  EXPECT_STREQ(graph.failure_reason(), "capture outside grad mode");
}

TEST(StepGraph, AcceptsChecksFeedCountAndSizes) {
  auto host = gpusim::make_host_device();
  tensor::graph::StepGraph graph;
  util::Rng rng(4);
  Tensor w = menos::testing::random_leaf({16, 8}, rng, *host);
  std::vector<std::int32_t> ids{1, 2, 3, 4};
  const tensor::graph::Feeds feeds{&ids};
  graph.capture(feeds, [&] {
    return tensor::sum(tensor::embedding(w, ids, 2, 2));
  });
  ASSERT_TRUE(graph.ready()) << graph.failure_reason();

  std::vector<std::int32_t> same_size{4, 3, 2, 1};
  std::vector<std::int32_t> wrong_size{1, 2};
  EXPECT_TRUE(graph.accepts({&same_size}));
  EXPECT_FALSE(graph.accepts({&wrong_size}));
  EXPECT_FALSE(graph.accepts({&same_size, &same_size}));

  // Replay with fresh ids must gather the NEW rows, not the captured ones.
  Tensor replayed = graph.replay({&same_size});
  Tensor expected = tensor::sum(tensor::embedding(w, same_size, 2, 2));
  EXPECT_EQ(replayed.item(), expected.item());
}

TEST(StepGraph, WarmAllocatorPrimesTheCachePoolFromThePlan) {
  // Capture one step on a pooled device, flush the pool, warm it from the
  // plan, and replay: the replay's activation allocations must be pool
  // hits (no new segments beyond what warm() created).
  auto pooled = std::make_unique<mem::CachingAllocator>(
      gpusim::make_host_device("pool-inner"));
  mem::CachingAllocator& cache = *pooled;

  TrainRun run = train(nn::ModelFamily::Opt, nn::AdapterType::Lora, 3,
                       /*stepped=*/true, &cache);
  ASSERT_TRUE(run.model->step_graph().ready())
      << run.model->step_graph().failure_reason();

  const auto plan = run.model->step_graph().planned_bytes();
  ASSERT_FALSE(plan.empty());
  std::size_t total = 0;
  for (std::size_t b : plan) total += b;
  ASSERT_GT(total, 0u);

  cache.empty_cache();
  run.model->step_graph().warm_allocator(cache);
  EXPECT_GT(cache.cache_stats().segment_bytes, 0u)
      << "warm_allocator should leave pooled segments behind";

  const auto before = cache.cache_stats();
  data::CharTokenizer tok;
  auto tokens = tok.encode(data::make_shakespeare_like(500, 23).text);
  data::DataLoader loader(std::move(tokens), 2, 8, 7);
  data::Batch batch = loader.next();
  Tensor loss = run.model->loss_stepped(batch.inputs, batch.targets, 2, 8);
  EXPECT_TRUE(loss.defined());
  const auto after = cache.cache_stats();
  EXPECT_EQ(after.segments_allocated, before.segments_allocated)
      << "a warmed pool should serve the whole replay without new segments";
}

TEST(StepGraph, WarmAllocatorSeesThroughAuditDecorators) {
  // The factory composition is audit(cache(meter)); warm_allocator must
  // walk the decorator chain to find the pool. A plain host device (no
  // pool anywhere) must be a harmless no-op.
  auto host = gpusim::make_host_device();
  auto audited = gpusim::make_audit_device(
      std::make_unique<mem::CachingAllocator>(
          gpusim::make_host_device("audited-inner")));
  {
    tensor::graph::StepGraph graph;
    util::Rng rng(5);
    Tensor a = menos::testing::random_leaf({4, 4}, rng, *host);
    std::vector<std::int32_t> ids{0, 1, 2, 3};
    const tensor::graph::Feeds feeds{&ids};
    graph.capture(feeds, [&] {
      return tensor::sum(tensor::embedding(a, ids, 2, 2));
    });
    ASSERT_TRUE(graph.ready());
    graph.warm_allocator(*host);     // no pool: must not throw
    graph.warm_allocator(*audited);  // through the auditor into the pool
  }
}

}  // namespace
}  // namespace menos
