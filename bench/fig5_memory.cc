// Figure 5: GPU memory consumption for persistent components (base model
// parameters + adapter parameters + optimizer states) as the number of
// clients grows, vanilla split learning vs Menos.
#include "bench_common.h"

using namespace menos;
using menos::util::to_gb;

namespace {

void run_model(const sim::ModelSpec& spec, double paper_reduction_at_4) {
  std::printf("\n--- %s ---\n", spec.name.c_str());
  std::printf("%-8s  %-14s  %-14s  %-10s\n", "clients", "vanilla (GB)",
              "menos (GB)", "reduction");
  for (int n = 1; n <= 6; ++n) {
    const double vanilla = to_gb(spec.vanilla_persistent_bytes(n));
    const double menos_gb = to_gb(spec.menos_persistent_bytes(n));
    const double reduction = 100.0 * (1.0 - menos_gb / vanilla);
    std::printf("%-8d  %-14.1f  %-14.1f  %9.1f%%\n", n, vanilla, menos_gb,
                reduction);
  }
  const double measured =
      100.0 * (1.0 - static_cast<double>(spec.menos_persistent_bytes(4)) /
                         static_cast<double>(spec.vanilla_persistent_bytes(4)));
  std::printf("paper reduction @4 clients: %.1f%%   measured: %.1f%%\n",
              paper_reduction_at_4, measured);
}

}  // namespace

int main() {
  bench::print_header(
      "Fig 5 — GPU memory for persistent components vs number of clients",
      "Fig 5(a) OPT: 4.7 -> 18.7 GB vanilla vs 6.7 GB Menos at 4 clients "
      "(-64.1%); Fig 5(b) Llama: -72.2% at 4 clients");

  run_model(sim::ModelSpec::opt_1_3b(), 64.1);
  run_model(sim::ModelSpec::llama2_7b(), 72.2);

  // §2.3 measurement study companion numbers.
  const sim::ModelSpec llama = sim::ModelSpec::llama2_7b();
  std::printf(
      "\n§2.3 measurement study (Llama-2-7B, batch 4):\n"
      "  M (base parameters):        %.1f GB (paper: ~24 GB)\n"
      "  A + O (adapter+optimizer):  %.0f MB (paper: 246 MB)\n"
      "  I (intermediate results):   %.1f GB (paper: ~4 GB)\n"
      "  total:                      %.1f GB (paper: ~28.7 GB)\n",
      to_gb(llama.server_param_bytes), util::to_mb(llama.adapter_opt_bytes),
      to_gb(llama.bwd_bytes),
      to_gb(llama.server_param_bytes + llama.adapter_opt_bytes +
            llama.bwd_bytes));
  return 0;
}
