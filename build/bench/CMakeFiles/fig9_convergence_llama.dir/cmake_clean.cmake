file(REMOVE_RECURSE
  "CMakeFiles/fig9_convergence_llama.dir/fig9_convergence_llama.cc.o"
  "CMakeFiles/fig9_convergence_llama.dir/fig9_convergence_llama.cc.o.d"
  "fig9_convergence_llama"
  "fig9_convergence_llama.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/fig9_convergence_llama.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
