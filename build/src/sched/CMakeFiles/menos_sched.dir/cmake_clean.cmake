file(REMOVE_RECURSE
  "CMakeFiles/menos_sched.dir/scheduler.cc.o"
  "CMakeFiles/menos_sched.dir/scheduler.cc.o.d"
  "libmenos_sched.a"
  "libmenos_sched.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/menos_sched.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
