#include "nn/module.h"

#include <functional>

#include "util/check.h"

namespace menos::nn {

tensor::Tensor FreshInit::get(const std::string& name, tensor::Shape shape,
                              gpusim::Device& device, float init_std) {
  // Order-independent determinism: the stream depends only on (seed, name).
  const std::uint64_t name_hash = std::hash<std::string>{}(name);
  util::Rng rng(seed_ ^ (name_hash * 0x9e3779b97f4a7c15ULL));
  tensor::Tensor t = tensor::Tensor::empty(std::move(shape), device);
  if (init_std < 0.0f) {
    float* p = t.data();
    for (tensor::Index i = 0; i < t.numel(); ++i) p[i] = 1.0f;
  } else if (init_std == 0.0f) {
    float* p = t.data();
    for (tensor::Index i = 0; i < t.numel(); ++i) p[i] = 0.0f;
  } else {
    rng.fill_normal(t.data(), static_cast<std::size_t>(t.numel()), init_std);
  }
  return t;
}

tensor::Tensor SharedSource::get(const std::string& name, tensor::Shape shape,
                                 gpusim::Device& device, float init_std) {
  (void)device;
  (void)init_std;
  auto it = table_->find(name);
  if (it == table_->end()) {
    throw StateError("shared parameter store has no entry for '" + name + "'");
  }
  MENOS_CHECK_MSG(it->second.shape() == shape,
                  "shared parameter '" << name << "' has shape "
                                       << tensor::shape_to_string(it->second.shape())
                                       << ", structure expects "
                                       << tensor::shape_to_string(shape));
  return it->second;
}

std::vector<Parameter> Module::parameters() const {
  std::vector<Parameter> out;
  collect(out);
  return out;
}

std::vector<Parameter> Module::trainable_parameters() const {
  std::vector<Parameter> all = parameters();
  std::vector<Parameter> out;
  for (auto& p : all) {
    if (p.trainable()) out.push_back(std::move(p));
  }
  return out;
}

std::size_t Module::parameter_bytes() const {
  std::size_t bytes = 0;
  for (const Parameter& p : parameters()) bytes += p.value.bytes();
  return bytes;
}

std::size_t Module::trainable_parameter_bytes() const {
  std::size_t bytes = 0;
  for (const Parameter& p : parameters()) {
    if (p.trainable()) bytes += p.value.bytes();
  }
  return bytes;
}

std::size_t Module::frozen_parameter_bytes() const {
  std::size_t bytes = 0;
  for (const Parameter& p : parameters()) {
    if (!p.trainable()) bytes += p.value.bytes();
  }
  return bytes;
}

void Module::register_parameter(std::string name, tensor::Tensor value) {
  MENOS_CHECK_MSG(value.defined(), "registering undefined parameter '" << name
                                                                       << "'");
  own_.push_back(Parameter{std::move(name), std::move(value)});
}

void Module::register_child(std::string name, Module* child) {
  MENOS_CHECK_MSG(child != nullptr, "registering null child module");
  children_.emplace_back(std::move(name), child);
}

void Module::collect(std::vector<Parameter>& out) const {
  for (const Parameter& p : own_) out.push_back(p);
  for (const auto& [name, child] : children_) {
    (void)name;
    child->collect(out);
  }
}

}  // namespace menos::nn
