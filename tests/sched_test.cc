// Scheduler tests: Algorithm 2 semantics, fairness gates, backfilling,
// partition placement, and randomized invariant sweeps.
#include <gtest/gtest.h>

#include <vector>

#include "sched/scheduler.h"
#include "util/rng.h"

namespace menos::sched {
namespace {

/// Collects grants for assertions.
struct GrantLog {
  std::vector<Grant> grants;

  void attach(Scheduler& s) {
    s.set_grant_callback([this](const Grant& g) { grants.push_back(g); });
  }

  bool granted(int client) const {
    for (const Grant& g : grants) {
      if (g.client_id == client) return true;
    }
    return false;
  }
};

TEST(Scheduler, GrantsImmediatelyWhenMemoryFree) {
  Scheduler s(1000);
  GrantLog log;
  log.attach(s);
  s.register_client(0, {100, 400});
  s.on_request(0, OpKind::Forward);
  ASSERT_EQ(log.grants.size(), 1u);
  EXPECT_EQ(log.grants[0].client_id, 0);
  EXPECT_EQ(s.available(), 900u);
  EXPECT_EQ(s.allocated_to(0), 100u);
  s.on_complete(0);
  EXPECT_EQ(s.available(), 1000u);
}

TEST(Scheduler, BackwardUsesBackwardDemand) {
  Scheduler s(1000);
  GrantLog log;
  log.attach(s);
  s.register_client(0, {100, 400});
  s.on_request(0, OpKind::Backward);
  EXPECT_EQ(s.allocated_to(0), 400u);
  s.on_complete(0);
}

TEST(Scheduler, QueuesWhenFullAndGrantsOnRelease) {
  Scheduler s(500);
  GrantLog log;
  log.attach(s);
  s.register_client(0, {400, 400});
  s.register_client(1, {400, 400});
  s.on_request(0, OpKind::Forward);
  s.on_request(1, OpKind::Forward);
  EXPECT_EQ(log.grants.size(), 1u);
  EXPECT_EQ(s.waiting_count(), 1u);
  s.on_complete(0);
  ASSERT_EQ(log.grants.size(), 2u);
  EXPECT_EQ(log.grants[1].client_id, 1);
  s.on_complete(1);
}

TEST(Scheduler, RegistrationRejectsImpossibleDemand) {
  Scheduler s(100);
  EXPECT_THROW(s.register_client(0, {50, 200}), menos::InvalidArgument);
}

TEST(Scheduler, DoubleRegistrationRejected) {
  Scheduler s(1000);
  GrantLog log;
  log.attach(s);
  s.register_client(0, {100, 100});
  EXPECT_THROW(s.register_client(0, {1, 1}), menos::InvalidArgument);
}

TEST(Scheduler, RequestWhileHoldingRejected) {
  Scheduler s(1000);
  GrantLog log;
  log.attach(s);
  s.register_client(0, {100, 100});
  s.on_request(0, OpKind::Forward);
  EXPECT_THROW(s.on_request(0, OpKind::Backward), menos::InvalidArgument);
  s.on_complete(0);
}

TEST(Scheduler, CompleteWithoutAllocationRejected) {
  Scheduler s(1000);
  s.register_client(0, {10, 10});
  EXPECT_THROW(s.on_complete(0), menos::InvalidArgument);
}

TEST(Scheduler, UnregisterWithLiveAllocationRejected) {
  Scheduler s(1000);
  GrantLog log;
  log.attach(s);
  s.register_client(0, {10, 10});
  s.on_request(0, OpKind::Forward);
  EXPECT_THROW(s.unregister_client(0), menos::StateError);
  s.on_complete(0);
  s.unregister_client(0);
}

TEST(Scheduler, UnregisterDropsWaitingRequest) {
  Scheduler s(100);
  GrantLog log;
  log.attach(s);
  s.register_client(0, {100, 100});
  s.register_client(1, {100, 100});
  s.on_request(0, OpKind::Forward);
  s.on_request(1, OpKind::Forward);
  EXPECT_EQ(s.waiting_count(), 1u);
  s.unregister_client(1);
  EXPECT_EQ(s.waiting_count(), 0u);
  s.on_complete(0);
}

TEST(Scheduler, ForwardBackfillsPastBlockedBackwardHead) {
  // The key Menos claim (§5.2): "forward operations require far less GPU
  // memory, and our scheduling algorithm can always select and parallelize
  // them with the backward computations of other clients."
  Scheduler s(1000);
  GrantLog log;
  log.attach(s);
  s.register_client(0, {100, 800});
  s.register_client(1, {100, 800});
  s.register_client(2, {100, 800});
  s.on_request(0, OpKind::Backward);  // takes 800
  s.on_request(1, OpKind::Backward);  // blocked head (needs 800 > 200)
  s.on_request(2, OpKind::Forward);   // 100 fits: backfill past client 1
  ASSERT_EQ(log.grants.size(), 2u);
  EXPECT_EQ(log.grants[1].client_id, 2);
  EXPECT_EQ(log.grants[1].kind, OpKind::Forward);
  EXPECT_GE(s.stats().backfill_grants, 1u);
  s.on_complete(0);
  s.on_complete(2);
  s.on_complete(1);
}

TEST(Scheduler, BackwardNeverOvertakesEarlierBackward) {
  // "the FCFS logic prevents long-waiting backward requests from being
  // consistently bypassed" — a later SMALLER backward must wait for an
  // earlier larger one.
  Scheduler s(1000);
  GrantLog log;
  log.attach(s);
  s.register_client(0, {100, 900});
  s.register_client(1, {50, 900});
  s.register_client(2, {50, 300});
  s.on_request(0, OpKind::Backward);  // takes 900
  s.on_request(1, OpKind::Backward);  // waits (needs 900)
  s.on_request(2, OpKind::Backward);  // 300 would fit 100 free? no: only 100
  EXPECT_EQ(log.grants.size(), 1u);
  s.on_complete(0);  // frees 900: head (client 1) must be granted first
  ASSERT_GE(log.grants.size(), 2u);
  EXPECT_EQ(log.grants[1].client_id, 1);
  // Client 2 (300) does NOT fit the remaining 100 and must wait even
  // though it is smaller than the granted head.
  EXPECT_EQ(log.grants.size(), 2u);
  s.on_complete(1);
  ASSERT_EQ(log.grants.size(), 3u);
  EXPECT_EQ(log.grants[2].client_id, 2);
  s.on_complete(2);
}

TEST(Scheduler, FcfsOnlyBlocksEverythingBehindHead) {
  Scheduler s(1000, Policy::FcfsOnly);
  GrantLog log;
  log.attach(s);
  s.register_client(0, {100, 800});
  s.register_client(1, {100, 800});
  s.register_client(2, {100, 800});
  s.on_request(0, OpKind::Backward);
  s.on_request(1, OpKind::Backward);
  s.on_request(2, OpKind::Forward);  // would fit, but strict FCFS blocks it
  EXPECT_EQ(log.grants.size(), 1u);
  EXPECT_EQ(s.waiting_count(), 2u);
  s.on_complete(0);
  // Head unblocks; the forward then backfills... under FcfsOnly it is
  // granted only because memory remains after the head.
  EXPECT_TRUE(log.granted(1));
  EXPECT_TRUE(log.granted(2));
  s.on_complete(1);
  s.on_complete(2);
}

TEST(Scheduler, PersistentReservationShrinksPool) {
  Scheduler s(1000);
  GrantLog log;
  log.attach(s);
  s.reserve_persistent(0, 600);
  EXPECT_EQ(s.available(), 400u);
  s.register_client(0, {100, 400});
  s.on_request(0, OpKind::Backward);
  EXPECT_EQ(log.grants.size(), 1u);
  EXPECT_EQ(s.available(), 0u);
  s.on_complete(0);
  EXPECT_THROW(s.reserve_persistent(0, 500), menos::OutOfMemory);
  s.release_persistent(0, 600);
  EXPECT_EQ(s.available(), 1000u);
}

TEST(Scheduler, ReleasePersistentTriggersScheduling) {
  Scheduler s(1000);
  GrantLog log;
  log.attach(s);
  s.reserve_persistent(0, 500);       // pool now 500
  s.register_client(0, {400, 400});
  s.register_client(1, {450, 450});
  s.on_request(0, OpKind::Backward);  // granted: 100 left
  s.on_request(1, OpKind::Backward);  // waits (450 > 100)
  EXPECT_EQ(log.grants.size(), 1u);
  s.release_persistent(0, 400);       // a departing client frees its A+O
  EXPECT_EQ(log.grants.size(), 2u);   // waiter granted without any complete
  s.on_complete(0);
  s.on_complete(1);
}

TEST(Scheduler, MultiPartitionPlacement) {
  Scheduler s(std::vector<std::size_t>{500, 500});
  GrantLog log;
  log.attach(s);
  s.register_client(0, {400, 400});
  s.register_client(1, {400, 400});
  s.register_client(2, {400, 400});
  s.on_request(0, OpKind::Backward);
  s.on_request(1, OpKind::Backward);
  // Two GPUs: both backwards run concurrently on different partitions.
  ASSERT_EQ(log.grants.size(), 2u);
  EXPECT_NE(log.grants[0].partition, log.grants[1].partition);
  s.on_request(2, OpKind::Backward);
  EXPECT_EQ(log.grants.size(), 2u);  // no third slot
  s.on_complete(0);
  EXPECT_EQ(log.grants.size(), 3u);
  s.on_complete(1);
  s.on_complete(2);
}

TEST(Scheduler, BestFitPartitionChoice) {
  // A small request should land on the fuller partition, preserving the
  // large hole for a future backward.
  Scheduler s(std::vector<std::size_t>{1000, 400});
  GrantLog log;
  log.attach(s);
  s.register_client(0, {300, 300});
  s.on_request(0, OpKind::Forward);
  ASSERT_EQ(log.grants.size(), 1u);
  EXPECT_EQ(log.grants[0].partition, 1);  // 400 is the tightest fit
  s.on_complete(0);
}

TEST(Scheduler, StatsTrackRequestsAndGrants) {
  Scheduler s(100);
  GrantLog log;
  log.attach(s);
  s.register_client(0, {60, 60});
  s.register_client(1, {60, 60});
  s.on_request(0, OpKind::Forward);
  s.on_request(1, OpKind::Forward);  // blocked
  s.on_complete(0);
  s.on_complete(1);
  const SchedulerStats st = s.stats();
  EXPECT_EQ(st.requests, 2u);
  EXPECT_EQ(st.grants, 2u);
  EXPECT_GE(st.blocked_cycles, 1u);
}

// ----- SwapOnIdle: the reclaim hook (mem::OffloadEngine integration) -----

TEST(Scheduler, SwapOnIdleReclaimsPersistentBytesForReservation) {
  // Capacity 100, 60 reserved by an "idle client A". A new client's 80-byte
  // reservation blocks under FcfsBackfill but succeeds under SwapOnIdle
  // once the reclaim callback hands A's 60 bytes back (evicted to host).
  Scheduler blocked(100, Policy::FcfsBackfill);
  blocked.reserve_persistent(0, 60);
  EXPECT_THROW(blocked.reserve_persistent(0, 80), OutOfMemory);

  Scheduler s(100, Policy::SwapOnIdle);
  s.reserve_persistent(0, 60);
  std::vector<std::size_t> asked;
  s.set_reclaim_callback([&asked](int partition, std::size_t bytes_needed) {
    EXPECT_EQ(partition, 0);
    asked.push_back(bytes_needed);
    return std::size_t{60};  // evict idle A
  });
  s.reserve_persistent(0, 80);  // must not throw
  ASSERT_EQ(asked.size(), 1u);
  EXPECT_EQ(asked[0], 40u);  // shortfall only, not the full request
  EXPECT_EQ(s.available(), 20u);
  const SchedulerStats st = s.stats();
  EXPECT_EQ(st.reclaims, 1u);
  EXPECT_EQ(st.reclaimed_bytes, 60u);
}

TEST(Scheduler, SwapOnIdleReclaimsForBlockedRequests) {
  Scheduler s(100, Policy::SwapOnIdle);
  GrantLog log;
  log.attach(s);
  int calls = 0;
  s.set_reclaim_callback([&calls](int, std::size_t) {
    ++calls;
    return calls == 1 ? std::size_t{60} : std::size_t{0};
  });
  s.register_client(1, {80, 80});
  s.reserve_persistent(0, 60);       // idle client's A + O
  s.on_request(1, OpKind::Forward);  // 40 free: reclaim 60, then grant
  EXPECT_TRUE(log.granted(1));
  EXPECT_EQ(calls, 1);
  s.on_complete(1);
}

TEST(Scheduler, SwapOnIdleDryReclaimStopsAfterOneAttemptPerPass) {
  Scheduler s(100, Policy::SwapOnIdle);
  GrantLog log;
  log.attach(s);
  int calls = 0;
  s.set_reclaim_callback([&calls](int, std::size_t) {
    ++calls;
    return std::size_t{0};  // nothing idle to evict
  });
  s.register_client(1, {80, 80});
  s.register_client(2, {90, 90});
  s.reserve_persistent(0, 60);
  s.on_request(1, OpKind::Forward);
  s.on_request(2, OpKind::Forward);
  // Each schedule pass asks at most once; a dry pool is not hammered for
  // every waiting request.
  EXPECT_LE(calls, 2);
  EXPECT_EQ(log.grants.size(), 0u);
  EXPECT_EQ(s.stats().reclaims, 0u);  // nothing was actually freed
  s.unregister_client(1);
  s.unregister_client(2);
}

TEST(Scheduler, PressureCallbackFiresOncePerReclaimPass) {
  Scheduler s(100, Policy::SwapOnIdle);
  s.reserve_persistent(0, 60);
  s.set_reclaim_callback([](int, std::size_t) { return std::size_t{60}; });
  std::vector<PressureEvent> events;
  s.set_pressure_callback([&s, &events](const PressureEvent& e) {
    // The callback fires after the scheduler mutex drops: re-entry is
    // legal, and the triggering reservation has already been deducted.
    EXPECT_LE(s.available(e.partition), e.free_after);
    events.push_back(e);
  });
  s.reserve_persistent(0, 80);  // 40 free: reclaim pass covers the shortfall
  ASSERT_EQ(events.size(), 1u);
  EXPECT_EQ(events[0].partition, 0);
  EXPECT_EQ(events[0].bytes_needed, 40u);
  EXPECT_EQ(events[0].bytes_freed, 60u);
  EXPECT_EQ(events[0].free_after, 100u);  // 40 + 60 reclaimed, pre-deduction
}

TEST(Scheduler, PressureCallbackFiresEvenWhenReclaimComesUpShort) {
  Scheduler s(100, Policy::SwapOnIdle);
  s.reserve_persistent(0, 60);
  s.set_reclaim_callback([](int, std::size_t) { return std::size_t{0}; });
  std::vector<PressureEvent> events;
  s.set_pressure_callback(
      [&events](const PressureEvent& e) { events.push_back(e); });
  EXPECT_THROW(s.reserve_persistent(0, 80), OutOfMemory);
  // The refusal is exactly what a fleet rebalancer needs to observe.
  ASSERT_EQ(events.size(), 1u);
  EXPECT_EQ(events[0].bytes_needed, 40u);
  EXPECT_EQ(events[0].bytes_freed, 0u);
  EXPECT_EQ(events[0].free_after, 40u);
}

TEST(Scheduler, NoPressureEventsWithoutSubscriber) {
  Scheduler s(100, Policy::SwapOnIdle);
  s.reserve_persistent(0, 60);
  s.set_reclaim_callback([](int, std::size_t) { return std::size_t{60}; });
  s.reserve_persistent(0, 80);  // succeeds; no subscriber, nothing buffered
  EXPECT_EQ(s.stats().reclaims, 1u);
}

TEST(Scheduler, TryReclaimIsANoOpWhenBytesAlreadyFit) {
  Scheduler s(100, Policy::SwapOnIdle);
  int calls = 0;
  s.set_reclaim_callback([&calls](int, std::size_t) {
    ++calls;
    return std::size_t{0};
  });
  EXPECT_TRUE(s.try_reclaim(100));
  EXPECT_EQ(calls, 0);
  EXPECT_FALSE(s.try_reclaim(200));
  EXPECT_EQ(calls, 1);
}

TEST(Scheduler, FcfsBackfillNeverInvokesReclaim) {
  Scheduler s(100, Policy::FcfsBackfill);
  GrantLog log;
  log.attach(s);
  bool called = false;
  s.set_reclaim_callback([&called](int, std::size_t) {
    called = true;
    return std::size_t{100};
  });
  s.register_client(1, {80, 80});
  s.reserve_persistent(0, 50);       // leaves 50 free: request cannot fit
  s.on_request(1, OpKind::Forward);  // blocked; no reclaim under backfill
  EXPECT_FALSE(called);
  EXPECT_FALSE(log.granted(1));
  s.unregister_client(1);
}

// ----- randomized invariant sweep -----

struct TraceParams {
  int clients;
  std::size_t capacity;
  Policy policy;
  std::uint64_t seed;
};

class SchedulerTraceSweep : public ::testing::TestWithParam<TraceParams> {};

TEST_P(SchedulerTraceSweep, InvariantsHoldOnRandomTrace) {
  const TraceParams p = GetParam();
  Scheduler s(p.capacity, p.policy);
  util::Rng rng(p.seed);

  std::vector<ClientDemands> demands(static_cast<std::size_t>(p.clients));
  for (auto& d : demands) {
    d.forward_bytes = 16 + rng.next_below(p.capacity / 6);
    d.backward_bytes = d.forward_bytes + rng.next_below(p.capacity / 2);
    if (d.backward_bytes > p.capacity) d.backward_bytes = p.capacity;
  }

  // State per client: 0 = idle, 1 = waiting, 2 = holding.
  std::vector<int> state(static_cast<std::size_t>(p.clients), 0);
  std::vector<int> holders;
  std::size_t min_available = p.capacity;
  std::uint64_t grants_seen = 0;

  s.set_grant_callback([&](const Grant& g) {
    auto idx = static_cast<std::size_t>(g.client_id);
    EXPECT_EQ(state[idx], 1) << "grant to non-waiting client";
    state[idx] = 2;
    holders.push_back(g.client_id);
    ++grants_seen;
  });
  for (int i = 0; i < p.clients; ++i) {
    s.register_client(i, demands[static_cast<std::size_t>(i)]);
  }

  for (int step = 0; step < 600; ++step) {
    const int c = static_cast<int>(rng.next_below(
        static_cast<std::uint64_t>(p.clients)));
    const auto idx = static_cast<std::size_t>(c);
    if (state[idx] == 0) {
      const OpKind kind =
          rng.next_below(2) == 0 ? OpKind::Forward : OpKind::Backward;
      state[idx] = 1;
      s.on_request(c, kind);
    } else if (state[idx] == 2 && rng.next_below(2) == 0) {
      state[idx] = 0;
      holders.erase(std::find(holders.begin(), holders.end(), c));
      s.on_complete(c);
    }
    // INVARIANT: the scheduler never over-commits its pool.
    const std::size_t avail = s.total_available();
    EXPECT_LE(avail, p.capacity);
    min_available = std::min(min_available, avail);
    std::size_t held = 0;
    for (int h : holders) held += s.allocated_to(h);
    EXPECT_EQ(held + avail, p.capacity);
  }

  // Drain: complete all holders; every waiter must eventually be granted
  // (no starvation under either policy once memory frees).
  for (int round = 0; round < 2 * p.clients + 5 && !holders.empty(); ++round) {
    const int c = holders.front();
    holders.erase(holders.begin());
    state[static_cast<std::size_t>(c)] = 0;
    s.on_complete(c);
    // on_complete may synchronously grant new holders (callback appends).
  }
  EXPECT_EQ(s.waiting_count(), 0u) << "a waiter starved after full drain";
  EXPECT_GT(grants_seen, 0u);
}

INSTANTIATE_TEST_SUITE_P(
    Traces, SchedulerTraceSweep,
    ::testing::Values(TraceParams{2, 1000, Policy::FcfsBackfill, 1},
                      TraceParams{4, 1000, Policy::FcfsBackfill, 2},
                      TraceParams{8, 2000, Policy::FcfsBackfill, 3},
                      TraceParams{8, 500, Policy::FcfsBackfill, 4},
                      TraceParams{3, 800, Policy::FcfsOnly, 5},
                      TraceParams{6, 1500, Policy::FcfsOnly, 6},
                      TraceParams{12, 3000, Policy::FcfsBackfill, 7},
                      TraceParams{16, 1200, Policy::FcfsBackfill, 8}));

}  // namespace
}  // namespace menos::sched
