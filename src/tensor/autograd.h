// Reverse-mode autograd tape.
//
// Each differentiable op that runs with grad mode on attaches a Node to its
// output. A Node holds the op's inputs (for graph traversal), whatever
// forward activations its backward function captured, and the backward
// function itself. tensor::backward(loss) topologically sorts the reachable
// graph and accumulates gradients into leaf tensors' .grad.
//
// Memory semantics matter here: captured activations keep device memory
// alive until the graph is dropped. The Menos serving session releases the
// graph (and therefore the intermediate-result memory I of §2.3) simply by
// letting the output tensor go out of scope after backward — the on-demand
// release of Fig 3.
#pragma once

#include <functional>
#include <memory>
#include <string>
#include <vector>

#include "tensor/tensor.h"

namespace menos::tensor {

class Node {
 public:
  /// `backward_fn(grad_out)` must return one gradient per entry of
  /// `inputs`, aligned by position; an undefined Tensor means "no gradient
  /// for this input".
  Node(std::string name, std::vector<Tensor> inputs,
       std::function<std::vector<Tensor>(const Tensor&)> backward_fn)
      : name_(std::move(name)),
        inputs_(std::move(inputs)),
        backward_fn_(std::move(backward_fn)) {}

  const std::string& name() const noexcept { return name_; }
  const std::vector<Tensor>& inputs() const noexcept { return inputs_; }

  std::vector<Tensor> run_backward(const Tensor& grad_out) const {
    return backward_fn_(grad_out);
  }

 private:
  std::string name_;
  std::vector<Tensor> inputs_;
  std::function<std::vector<Tensor>(const Tensor&)> backward_fn_;
};

namespace detail {

/// True if this op invocation should record a node: grad mode is on and at
/// least one input participates in the tape.
bool should_record(const std::vector<Tensor>& inputs);

/// Attach a node to `output` (marks it as non-leaf tape member).
void attach_node(Tensor& output, std::string name, std::vector<Tensor> inputs,
                 std::function<std::vector<Tensor>(const Tensor&)> backward_fn);

/// Accumulate `delta` into `target.grad` (allocating it on first use).
void accumulate_grad(const Tensor& target, const Tensor& delta);

}  // namespace detail

/// Run reverse-mode differentiation from `root`. When `seed` is undefined
/// the seed gradient is ones (the loss case); otherwise `seed` must match
/// root's element count — this is how split learning resumes
/// back-propagation from the gradients g_c received over the network.
/// Gradients accumulate into every reachable tensor with requires_grad ==
/// true. The traversed graph nodes stay alive only as long as the caller
/// keeps the output tensors; backward itself does not free them (call
/// sites drop their references to release activation memory).
void backward(const Tensor& root, const Tensor& seed = Tensor());

}  // namespace menos::tensor
