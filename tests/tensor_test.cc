// Unit tests for the tensor engine: construction, views, and every op's
// forward semantics against hand-computed values.
#include <gtest/gtest.h>

#include "tensor/ops.h"
#include "test_helpers.h"

namespace menos::tensor {
namespace {

using menos::testing::host_device;

TEST(TensorBasics, NumelAndShape) {
  EXPECT_EQ(numel_of({2, 3, 4}), 24);
  EXPECT_EQ(numel_of({}), 1);
  EXPECT_EQ(numel_of({5}), 5);
  EXPECT_EQ(shape_to_string({2, 3}), "[2, 3]");
}

TEST(TensorBasics, ZerosAndFull) {
  Tensor z = Tensor::zeros({2, 3}, host_device());
  for (float v : z.to_vector()) EXPECT_EQ(v, 0.0f);
  Tensor f = Tensor::full({4}, 2.5f, host_device());
  for (float v : f.to_vector()) EXPECT_EQ(v, 2.5f);
}

TEST(TensorBasics, FromVectorRoundTrip) {
  std::vector<float> data{1, 2, 3, 4, 5, 6};
  Tensor t = Tensor::from_vector(data, {2, 3}, host_device());
  EXPECT_EQ(t.to_vector(), data);
  EXPECT_EQ(t.dim(0), 2);
  EXPECT_EQ(t.dim(1), 3);
  EXPECT_EQ(t.bytes(), 6 * sizeof(float));
}

TEST(TensorBasics, FromVectorShapeMismatchThrows) {
  std::vector<float> data{1, 2, 3};
  EXPECT_THROW(Tensor::from_vector(data, {2, 2}, host_device()),
               InvalidArgument);
}

TEST(TensorBasics, ScalarItem) {
  Tensor s = Tensor::scalar(3.5f, host_device());
  EXPECT_FLOAT_EQ(s.item(), 3.5f);
  Tensor t = Tensor::zeros({2}, host_device());
  EXPECT_THROW(t.item(), InvalidArgument);
}

TEST(TensorBasics, CloneIsDeep) {
  Tensor a = Tensor::full({3}, 1.0f, host_device());
  Tensor b = a.clone();
  b.data()[0] = 9.0f;
  EXPECT_FLOAT_EQ(a.data()[0], 1.0f);
}

TEST(TensorBasics, DetachSharesStorage) {
  Tensor a = Tensor::full({3}, 1.0f, host_device());
  Tensor b = a.detach();
  b.data()[0] = 9.0f;
  EXPECT_FLOAT_EQ(a.data()[0], 9.0f);
  EXPECT_FALSE(b.requires_grad());
}

TEST(TensorBasics, CopyHandleAliases) {
  Tensor a = Tensor::full({2}, 1.0f, host_device());
  Tensor b = a;
  b.data()[1] = 7.0f;
  EXPECT_FLOAT_EQ(a.data()[1], 7.0f);
}

TEST(TensorBasics, MigrateMovesBetweenDevices) {
  auto gpu = gpusim::make_sim_gpu("g", 1 << 20);
  Tensor a = Tensor::full({4}, 2.0f, *gpu);
  const std::size_t on_gpu = gpu->allocated();
  EXPECT_GT(on_gpu, 0u);
  a.migrate(host_device());
  EXPECT_EQ(gpu->allocated(), 0u);
  EXPECT_FLOAT_EQ(a.data()[2], 2.0f);
  a.migrate(*gpu);
  EXPECT_EQ(gpu->allocated(), on_gpu);
}

TEST(TensorBasics, RequiresGradOnNonLeafThrows) {
  Tensor a = Tensor::full({2}, 1.0f, host_device(), true);
  Tensor b = scale(a, 2.0f);
  EXPECT_THROW(b.set_requires_grad(true), InvalidArgument);
}

// ----- elementwise forward semantics -----

TEST(Elementwise, Add) {
  Tensor a = Tensor::from_vector({1, 2, 3}, {3}, host_device());
  Tensor b = Tensor::from_vector({10, 20, 30}, {3}, host_device());
  EXPECT_EQ(add(a, b).to_vector(), (std::vector<float>{11, 22, 33}));
}

TEST(Elementwise, AddShapeMismatchThrows) {
  Tensor a = Tensor::zeros({3}, host_device());
  Tensor b = Tensor::zeros({4}, host_device());
  EXPECT_THROW(add(a, b), InvalidArgument);
}

TEST(Elementwise, Sub) {
  Tensor a = Tensor::from_vector({5, 7}, {2}, host_device());
  Tensor b = Tensor::from_vector({2, 3}, {2}, host_device());
  EXPECT_EQ(sub(a, b).to_vector(), (std::vector<float>{3, 4}));
}

TEST(Elementwise, Mul) {
  Tensor a = Tensor::from_vector({2, 3}, {2}, host_device());
  Tensor b = Tensor::from_vector({4, 5}, {2}, host_device());
  EXPECT_EQ(mul(a, b).to_vector(), (std::vector<float>{8, 15}));
}

TEST(Elementwise, Scale) {
  Tensor a = Tensor::from_vector({1, -2}, {2}, host_device());
  EXPECT_EQ(scale(a, -3.0f).to_vector(), (std::vector<float>{-3, 6}));
}

TEST(Elementwise, AddBiasBroadcastsOverRows) {
  Tensor x = Tensor::from_vector({1, 2, 3, 4, 5, 6}, {2, 3}, host_device());
  Tensor b = Tensor::from_vector({10, 20, 30}, {3}, host_device());
  EXPECT_EQ(add_bias(x, b).to_vector(),
            (std::vector<float>{11, 22, 33, 14, 25, 36}));
}

TEST(Elementwise, Relu) {
  Tensor a = Tensor::from_vector({-1, 0, 2}, {3}, host_device());
  EXPECT_EQ(relu(a).to_vector(), (std::vector<float>{0, 0, 2}));
}

TEST(Elementwise, GeluKnownValues) {
  Tensor a = Tensor::from_vector({0.0f, 1.0f, -1.0f}, {3}, host_device());
  auto y = gelu(a).to_vector();
  EXPECT_NEAR(y[0], 0.0f, 1e-6f);
  EXPECT_NEAR(y[1], 0.8412f, 1e-3f);
  EXPECT_NEAR(y[2], -0.1588f, 1e-3f);
}

TEST(Elementwise, SiluKnownValues) {
  Tensor a = Tensor::from_vector({0.0f, 1.0f}, {2}, host_device());
  auto y = silu(a).to_vector();
  EXPECT_NEAR(y[0], 0.0f, 1e-6f);
  EXPECT_NEAR(y[1], 0.7311f, 1e-3f);
}

// ----- shape ops -----

TEST(ShapeOps, ReshapeSharesStorage) {
  Tensor a = Tensor::from_vector({1, 2, 3, 4}, {2, 2}, host_device());
  Tensor b = reshape(a, {4});
  b.data()[0] = 42.0f;
  EXPECT_FLOAT_EQ(a.data()[0], 42.0f);
  EXPECT_EQ(b.shape(), (Shape{4}));
  EXPECT_THROW(reshape(a, {3}), InvalidArgument);
}

TEST(ShapeOps, TransposeLast2D) {
  Tensor a = Tensor::from_vector({1, 2, 3, 4, 5, 6}, {2, 3}, host_device());
  Tensor t = transpose_last(a);
  EXPECT_EQ(t.shape(), (Shape{3, 2}));
  EXPECT_EQ(t.to_vector(), (std::vector<float>{1, 4, 2, 5, 3, 6}));
}

TEST(ShapeOps, PermuteBHTD) {
  // [1, 2, 2, 1] -> swap axes 1 and 2.
  Tensor a = Tensor::from_vector({1, 2, 3, 4}, {1, 2, 2, 1}, host_device());
  Tensor p = permute(a, {0, 2, 1, 3});
  EXPECT_EQ(p.shape(), (Shape{1, 2, 2, 1}));
  EXPECT_EQ(p.to_vector(), (std::vector<float>{1, 3, 2, 4}));
}

TEST(ShapeOps, PermuteInvalidAxesThrow) {
  Tensor a = Tensor::zeros({2, 2}, host_device());
  EXPECT_THROW(permute(a, {0, 0}), InvalidArgument);
  EXPECT_THROW(permute(a, {0}), InvalidArgument);
}

TEST(ShapeOps, ConcatAndSliceDim1) {
  Tensor a = Tensor::from_vector({1, 2, 3, 4}, {1, 2, 2}, host_device());
  Tensor b = Tensor::from_vector({5, 6}, {1, 1, 2}, host_device());
  Tensor c = concat_dim1(a, b);
  EXPECT_EQ(c.shape(), (Shape{1, 3, 2}));
  EXPECT_EQ(c.to_vector(), (std::vector<float>{1, 2, 3, 4, 5, 6}));
  Tensor s = slice_dim1(c, 1, 2);
  EXPECT_EQ(s.to_vector(), (std::vector<float>{3, 4, 5, 6}));
  EXPECT_THROW(slice_dim1(c, 2, 2), InvalidArgument);
}

// ----- matmul -----

TEST(Matmul, TwoByTwo) {
  Tensor a = Tensor::from_vector({1, 2, 3, 4}, {2, 2}, host_device());
  Tensor b = Tensor::from_vector({5, 6, 7, 8}, {2, 2}, host_device());
  EXPECT_EQ(matmul(a, b).to_vector(), (std::vector<float>{19, 22, 43, 50}));
}

TEST(Matmul, RectangularShapes) {
  Tensor a = Tensor::from_vector({1, 2, 3, 4, 5, 6}, {2, 3}, host_device());
  Tensor b = Tensor::from_vector({1, 0, 0, 1, 1, 1}, {3, 2}, host_device());
  Tensor c = matmul(a, b);
  EXPECT_EQ(c.shape(), (Shape{2, 2}));
  EXPECT_EQ(c.to_vector(), (std::vector<float>{4, 5, 10, 11}));
}

TEST(Matmul, BatchedSharedRight) {
  // Two batch entries against one weight.
  Tensor a = Tensor::from_vector({1, 0, 0, 1, 2, 0, 0, 2}, {2, 2, 2},
                                 host_device());
  Tensor w = Tensor::from_vector({1, 2, 3, 4}, {2, 2}, host_device());
  Tensor c = matmul(a, w);
  EXPECT_EQ(c.shape(), (Shape{2, 2, 2}));
  EXPECT_EQ(c.to_vector(), (std::vector<float>{1, 2, 3, 4, 2, 4, 6, 8}));
}

TEST(Matmul, BatchedBothSides) {
  Tensor a = Tensor::from_vector({1, 2, 3, 4}, {2, 1, 2}, host_device());
  Tensor b = Tensor::from_vector({1, 1, 2, 2}, {2, 2, 1}, host_device());
  Tensor c = matmul(a, b);
  EXPECT_EQ(c.shape(), (Shape{2, 1, 1}));
  EXPECT_EQ(c.to_vector(), (std::vector<float>{3, 14}));
}

TEST(Matmul, InnerDimMismatchThrows) {
  Tensor a = Tensor::zeros({2, 3}, host_device());
  Tensor b = Tensor::zeros({4, 2}, host_device());
  EXPECT_THROW(matmul(a, b), InvalidArgument);
}

TEST(Matmul, BatchDimMismatchThrows) {
  Tensor a = Tensor::zeros({2, 2, 2}, host_device());
  Tensor b = Tensor::zeros({3, 2, 2}, host_device());
  EXPECT_THROW(matmul(a, b), InvalidArgument);
}

// ----- reductions / softmax / norms -----

TEST(Reductions, SumAndMean) {
  Tensor a = Tensor::from_vector({1, 2, 3, 4}, {2, 2}, host_device());
  EXPECT_FLOAT_EQ(sum(a).item(), 10.0f);
  EXPECT_FLOAT_EQ(mean(a).item(), 2.5f);
}

TEST(Softmax, RowsSumToOne) {
  util::Rng rng(7);
  Tensor a = Tensor::empty({4, 8}, host_device());
  rng.fill_normal(a.data(), 32, 2.0f);
  Tensor y = softmax_lastdim(a);
  auto v = y.to_vector();
  for (int r = 0; r < 4; ++r) {
    float total = 0.0f;
    for (int j = 0; j < 8; ++j) total += v[static_cast<std::size_t>(r * 8 + j)];
    EXPECT_NEAR(total, 1.0f, 1e-5f);
  }
}

TEST(Softmax, InvariantToShift) {
  Tensor a = Tensor::from_vector({1, 2, 3}, {1, 3}, host_device());
  Tensor b = Tensor::from_vector({101, 102, 103}, {1, 3}, host_device());
  auto ya = softmax_lastdim(a).to_vector();
  auto yb = softmax_lastdim(b).to_vector();
  for (int i = 0; i < 3; ++i) EXPECT_NEAR(ya[i], yb[i], 1e-5f);
}

TEST(Softmax, CausalMaskZeroesFuture) {
  util::Rng rng(9);
  Tensor scores = Tensor::empty({1, 1, 3, 3}, host_device());
  rng.fill_normal(scores.data(), 9, 1.0f);
  auto y = causal_masked_softmax(scores).to_vector();
  // Row t may only attend to columns <= t.
  EXPECT_FLOAT_EQ(y[1], 0.0f);
  EXPECT_FLOAT_EQ(y[2], 0.0f);
  EXPECT_FLOAT_EQ(y[5], 0.0f);
  EXPECT_NEAR(y[0], 1.0f, 1e-6f);  // first row attends only to itself
  EXPECT_NEAR(y[3] + y[4], 1.0f, 1e-5f);
  EXPECT_NEAR(y[6] + y[7] + y[8], 1.0f, 1e-5f);
}

TEST(Norms, LayerNormNormalizesRows) {
  Tensor x = Tensor::from_vector({1, 2, 3, 4, 10, 20, 30, 40}, {2, 4},
                                 host_device());
  Tensor gamma = Tensor::full({4}, 1.0f, host_device());
  Tensor beta = Tensor::zeros({4}, host_device());
  auto y = layer_norm(x, gamma, beta).to_vector();
  for (int r = 0; r < 2; ++r) {
    float mu = 0.0f, var = 0.0f;
    for (int j = 0; j < 4; ++j) mu += y[static_cast<std::size_t>(r * 4 + j)];
    mu /= 4.0f;
    for (int j = 0; j < 4; ++j) {
      const float d = y[static_cast<std::size_t>(r * 4 + j)] - mu;
      var += d * d;
    }
    EXPECT_NEAR(mu, 0.0f, 1e-5f);
    EXPECT_NEAR(var / 4.0f, 1.0f, 1e-3f);
  }
}

TEST(Norms, LayerNormAffine) {
  Tensor x = Tensor::from_vector({1, 2}, {1, 2}, host_device());
  Tensor gamma = Tensor::from_vector({2, 2}, {2}, host_device());
  Tensor beta = Tensor::from_vector({5, 5}, {2}, host_device());
  auto y = layer_norm(x, gamma, beta).to_vector();
  // Normalized row is {-1, 1} (up to eps), so output is {3, 7}.
  EXPECT_NEAR(y[0], 3.0f, 1e-2f);
  EXPECT_NEAR(y[1], 7.0f, 1e-2f);
}

TEST(Norms, RmsNormMatchesDefinition) {
  Tensor x = Tensor::from_vector({3, 4}, {1, 2}, host_device());
  Tensor gamma = Tensor::full({2}, 1.0f, host_device());
  auto y = rms_norm(x, gamma, 0.0f).to_vector();
  const float rms = std::sqrt((9.0f + 16.0f) / 2.0f);
  EXPECT_NEAR(y[0], 3.0f / rms, 1e-5f);
  EXPECT_NEAR(y[1], 4.0f / rms, 1e-5f);
}

// ----- token ops -----

TEST(TokenOps, EmbeddingGathersRows) {
  Tensor w = Tensor::from_vector({0, 1, 10, 11, 20, 21}, {3, 2},
                                 host_device());
  Tensor e = embedding(w, {2, 0, 1, 1}, 2, 2);
  EXPECT_EQ(e.shape(), (Shape{2, 2, 2}));
  EXPECT_EQ(e.to_vector(),
            (std::vector<float>{20, 21, 0, 1, 10, 11, 10, 11}));
}

TEST(TokenOps, EmbeddingRejectsOutOfVocab) {
  Tensor w = Tensor::zeros({3, 2}, host_device());
  EXPECT_THROW(embedding(w, {3, 0}, 1, 2), InvalidArgument);
  EXPECT_THROW(embedding(w, {-1, 0}, 1, 2), InvalidArgument);
}

TEST(TokenOps, CrossEntropyUniformLogits) {
  // Uniform logits over V classes -> loss = log(V).
  Tensor logits = Tensor::zeros({2, 4}, host_device());
  Tensor loss = cross_entropy(logits, {0, 3});
  EXPECT_NEAR(loss.item(), std::log(4.0f), 1e-5f);
}

TEST(TokenOps, CrossEntropyConfidentCorrect) {
  Tensor logits = Tensor::from_vector({100, 0, 0, 0}, {1, 4}, host_device());
  EXPECT_NEAR(cross_entropy(logits, {0}).item(), 0.0f, 1e-4f);
}

TEST(TokenOps, CrossEntropyIgnoreIndex) {
  Tensor logits = Tensor::from_vector({100, 0, 0, 0, 0, 0, 0, 0}, {2, 4},
                                      host_device());
  // Second row ignored: loss comes from the confident first row only.
  Tensor loss = cross_entropy(logits, {0, -1});
  EXPECT_NEAR(loss.item(), 0.0f, 1e-4f);
  EXPECT_THROW(cross_entropy(logits, {0, 7}), InvalidArgument);
}

TEST(TokenOps, CrossEntropyAllIgnoredThrows) {
  Tensor logits = Tensor::zeros({1, 4}, host_device());
  EXPECT_THROW(cross_entropy(logits, {-1}), InvalidArgument);
}

// ----- memory accounting through tensor lifecycle -----

TEST(TensorMemory, StorageFreedOnDrop) {
  auto gpu = gpusim::make_sim_gpu("mem", 1 << 20);
  {
    Tensor a = Tensor::zeros({64}, *gpu);
    EXPECT_EQ(gpu->allocated(), 64 * sizeof(float));
    Tensor view = reshape(a, {8, 8});
    EXPECT_EQ(gpu->allocated(), 64 * sizeof(float));  // view shares storage
  }
  EXPECT_EQ(gpu->allocated(), 0u);
}

TEST(TensorMemory, OomSurfacesAsException) {
  auto gpu = gpusim::make_sim_gpu("tiny", 256);
  EXPECT_THROW(Tensor::zeros({1024}, *gpu), OutOfMemory);
  // Failed allocation must not leak accounting.
  EXPECT_EQ(gpu->allocated(), 0u);
}

TEST(TensorMemory, NoGradForwardAllocatesLessThanGradForward) {
  auto gpu = gpusim::make_sim_gpu("peek", 64u << 20);
  util::Rng rng(3);
  Tensor w1 = menos::testing::random_leaf({32, 64}, rng, *gpu);
  Tensor w2 = menos::testing::random_leaf({64, 32}, rng, *gpu);
  Tensor x = Tensor::empty({16, 32}, *gpu);
  rng.fill_normal(x.data(), 16 * 32, 1.0f);

  const auto run = [&] {
    Tensor h = gelu(matmul(x, w1));
    return sum(matmul(h, w2));
  };

  gpu->reset_peak();
  const std::size_t base = gpu->allocated();
  {
    NoGradGuard no_grad;
    run();
  }
  const std::size_t nograd_peak = gpu->stats().peak - base;

  gpu->reset_peak();
  {
    Tensor loss = run();  // graph + saved activations retained in scope
    const std::size_t grad_peak = gpu->stats().peak - base;
    EXPECT_GT(grad_peak, nograd_peak);
  }
  EXPECT_EQ(gpu->allocated(), base);  // graph release returns all memory
}

}  // namespace
}  // namespace menos::tensor
