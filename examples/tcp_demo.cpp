// Split fine-tuning over real TCP sockets: the server listens on
// 127.0.0.1, two clients connect through the loopback interface, exchange
// CRC-framed activation/gradient messages, and fine-tune concurrently.
//
// Run without arguments for the single-process demo. The same binary can
// also be split across machines:
//   tcp_demo server <port>
//   tcp_demo client <host> <port>
#include <cstdio>
#include <cstring>
#include <thread>

#include "core/client.h"
#include "core/server.h"
#include "net/transport.h"

using namespace menos;

namespace {

nn::TransformerConfig demo_model() { return nn::TransformerConfig::tiny_opt(); }

void run_client(const std::string& host, int port, const std::string& name,
                std::uint64_t adapter_seed) {
  auto conn = net::tcp_connect(host, port);
  if (conn == nullptr) {
    std::printf("[%s] connection to %s:%d refused\n", name.c_str(),
                host.c_str(), port);
    return;
  }
  gpusim::DeviceManager client_devices(1, 1u << 30);
  core::ClientOptions options;
  options.finetune.client_name = name;
  options.finetune.model = demo_model();
  options.finetune.batch_size = 2;
  options.finetune.seq_len = 16;
  options.finetune.lr = 5e-3f;
  options.finetune.adapter_seed = adapter_seed;
  options.base_seed = 42;
  core::Client client(options, std::move(conn), client_devices.gpu(0));
  client.connect();

  data::CharTokenizer tok;
  data::DataLoader loader(
      tok.encode(data::make_wikitext_like(4000, adapter_seed).text), 2, 16,
      adapter_seed);
  for (int step = 0; step < 6; ++step) {
    const auto stats = client.train_step(loader.next());
    std::printf("[%s] step %d: loss %.4f (round-trip %.1f ms)\n",
                name.c_str(), step, stats.loss, stats.total_s * 1e3);
  }
  client.disconnect();
}

int run_standalone_server(int port) {
  gpusim::DeviceManager devices(1, 1u << 30);
  core::ServerConfig config;
  config.mode = core::ServingMode::MenosOnDemand;
  config.base_seed = 42;
  core::Server server(config, devices, demo_model());
  auto listener = net::tcp_listen(port);
  if (listener == nullptr) {
    std::printf("failed to bind port %d\n", port);
    return 1;
  }
  std::printf("menos server listening on 127.0.0.1:%d (ctrl-c to stop)\n",
              listener->port());
  server.start(*listener);
  std::this_thread::sleep_for(std::chrono::hours(24));
  server.stop();
  return 0;
}

}  // namespace

int main(int argc, char** argv) {
  if (argc >= 2 && std::strcmp(argv[1], "server") == 0) {
    return run_standalone_server(argc >= 3 ? std::atoi(argv[2]) : 7070);
  }
  if (argc >= 4 && std::strcmp(argv[1], "client") == 0) {
    run_client(argv[2], std::atoi(argv[3]), "remote-client", 77);
    return 0;
  }

  // Single-process demo: server + two concurrent TCP clients.
  gpusim::DeviceManager devices(1, 1u << 30);
  core::ServerConfig config;
  config.mode = core::ServingMode::MenosOnDemand;
  config.base_seed = 42;
  core::Server server(config, devices, demo_model());
  auto listener = net::tcp_listen(0);
  if (listener == nullptr) {
    std::printf("failed to bind a loopback port\n");
    return 1;
  }
  const int port = listener->port();
  std::printf("menos server on 127.0.0.1:%d\n", port);
  server.start(*listener);

  std::thread c1([port] { run_client("127.0.0.1", port, "alice", 10); });
  std::thread c2([port] { run_client("127.0.0.1", port, "bob", 11); });
  c1.join();
  c2.join();
  server.stop();
  std::printf("demo complete: both clients fine-tuned over real sockets.\n");
  return 0;
}
