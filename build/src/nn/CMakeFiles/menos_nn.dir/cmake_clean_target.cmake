file(REMOVE_RECURSE
  "libmenos_nn.a"
)
