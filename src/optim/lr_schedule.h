// Learning-rate schedules for fine-tuning runs.
//
// The schedule is evaluated CLIENT-side (the client owns the adapter
// optimization) and the resulting rate is carried to the server inside
// each Backward message, so the server-side adapter steps with exactly the
// same rate — split fine-tuning stays mathematically identical to local
// fine-tuning even under warmup/decay.
#pragma once

#include <cstdint>

namespace menos::optim {

struct LrSchedule {
  enum class Kind : std::uint8_t {
    Constant,      ///< factor 1 forever
    WarmupLinear,  ///< linear 0->1 over warmup, then linear 1->min_factor
    WarmupCosine,  ///< linear 0->1 over warmup, then cosine 1->min_factor
  };

  Kind kind = Kind::Constant;
  std::int64_t warmup_steps = 0;
  std::int64_t total_steps = 0;  ///< decay horizon; beyond it, min_factor
  float min_factor = 0.0f;       ///< floor as a fraction of the base lr

  /// Multiplier on the base learning rate at `step` (0-indexed).
  float factor_at(std::int64_t step) const;

  static LrSchedule constant();
  static LrSchedule warmup_linear(std::int64_t warmup, std::int64_t total,
                                  float min_factor = 0.0f);
  static LrSchedule warmup_cosine(std::int64_t warmup, std::int64_t total,
                                  float min_factor = 0.0f);
};

}  // namespace menos::optim
