# Empty compiler generated dependencies file for menos_net.
# This may be replaced when dependencies are built.
