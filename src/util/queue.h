// Concurrency primitives shared by the runtime's server/client threads.
#pragma once

#include <condition_variable>
#include <deque>
#include <mutex>
#include <optional>
#include <utility>

namespace menos::util {

/// Unbounded MPMC blocking queue. close() wakes all waiters; pop() returns
/// nullopt once the queue is closed and drained, which is the shutdown
/// signal consumers should honour.
template <typename T>
class BlockingQueue {
 public:
  BlockingQueue() = default;
  BlockingQueue(const BlockingQueue&) = delete;
  BlockingQueue& operator=(const BlockingQueue&) = delete;

  /// Enqueue an item. Throws nothing; pushing to a closed queue is a no-op
  /// (the item is dropped), which keeps shutdown races benign.
  void push(T item) {
    {
      std::lock_guard<std::mutex> lock(mutex_);
      if (closed_) return;
      items_.push_back(std::move(item));
    }
    cv_.notify_one();
  }

  /// Block until an item is available or the queue is closed and empty.
  std::optional<T> pop() {
    std::unique_lock<std::mutex> lock(mutex_);
    cv_.wait(lock, [this] { return !items_.empty() || closed_; });
    if (items_.empty()) return std::nullopt;
    T item = std::move(items_.front());
    items_.pop_front();
    return item;
  }

  /// Non-blocking pop.
  std::optional<T> try_pop() {
    std::lock_guard<std::mutex> lock(mutex_);
    if (items_.empty()) return std::nullopt;
    T item = std::move(items_.front());
    items_.pop_front();
    return item;
  }

  /// Close the queue: subsequent push() calls drop, waiters drain then get
  /// nullopt.
  void close() {
    {
      std::lock_guard<std::mutex> lock(mutex_);
      closed_ = true;
    }
    cv_.notify_all();
  }

  bool closed() const {
    std::lock_guard<std::mutex> lock(mutex_);
    return closed_;
  }

  std::size_t size() const {
    std::lock_guard<std::mutex> lock(mutex_);
    return items_.size();
  }

 private:
  mutable std::mutex mutex_;
  std::condition_variable cv_;
  std::deque<T> items_;
  bool closed_ = false;
};

/// One-shot or resettable binary event ("manual-reset event" semantics).
class Notification {
 public:
  void notify() {
    {
      std::lock_guard<std::mutex> lock(mutex_);
      notified_ = true;
    }
    cv_.notify_all();
  }

  void wait() {
    std::unique_lock<std::mutex> lock(mutex_);
    cv_.wait(lock, [this] { return notified_; });
  }

  /// Wait and atomically reset; used by serving sessions that are signalled
  /// once per scheduling grant.
  void wait_and_reset() {
    std::unique_lock<std::mutex> lock(mutex_);
    cv_.wait(lock, [this] { return notified_; });
    notified_ = false;
  }

  bool notified() const {
    std::lock_guard<std::mutex> lock(mutex_);
    return notified_;
  }

 private:
  mutable std::mutex mutex_;
  std::condition_variable cv_;
  bool notified_ = false;
};

/// Go-style wait group for joining a dynamic set of worker threads.
class WaitGroup {
 public:
  void add(int n = 1) {
    std::lock_guard<std::mutex> lock(mutex_);
    count_ += n;
  }

  void done() {
    {
      std::lock_guard<std::mutex> lock(mutex_);
      --count_;
    }
    cv_.notify_all();
  }

  void wait() {
    std::unique_lock<std::mutex> lock(mutex_);
    cv_.wait(lock, [this] { return count_ <= 0; });
  }

 private:
  std::mutex mutex_;
  std::condition_variable cv_;
  int count_ = 0;
};

}  // namespace menos::util
