#include "core/executor.h"

#include <algorithm>
#include <cstdlib>
#include <thread>

namespace menos::core {

int Executor::resolve_width(int configured) {
  if (configured > 0) return configured;
  if (const char* env = std::getenv("MENOS_EXECUTOR_THREADS")) {
    const int parsed = std::atoi(env);
    if (parsed > 0) return parsed;
  }
  const unsigned hw = std::thread::hardware_concurrency();
  return std::min(8, std::max(1, static_cast<int>(hw)));
}

Executor::Executor(int configured_width)
    : pool_(resolve_width(configured_width)) {}

}  // namespace menos::core
