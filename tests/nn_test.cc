// nn module: layers, adapters, attention, transformer sections, parameter
// sourcing / base-model sharing invariants.
#include <gtest/gtest.h>

#include "nn/transformer.h"
#include "test_helpers.h"

namespace menos::nn {
namespace {

using menos::testing::check_gradients;
using menos::testing::host_device;
using tensor::Shape;
using tensor::Tensor;

AdapterSpec lora_spec(int rank = 4) {
  AdapterSpec a;
  a.type = AdapterType::Lora;
  a.rank = rank;
  a.alpha = 2.0f * rank;
  return a;
}

AdapterSpec no_adapter() {
  AdapterSpec a;
  a.type = AdapterType::None;
  return a;
}

TEST(ParameterSource, FreshInitDeterministicAndOrderIndependent) {
  FreshInit a(7), b(7);
  Tensor t1 = a.get("x.weight", {4, 4}, host_device(), 0.02f);
  Tensor unrelated = a.get("y.weight", {2, 2}, host_device(), 0.02f);
  // Different request order on the second source.
  Tensor u2 = b.get("y.weight", {2, 2}, host_device(), 0.02f);
  Tensor t2 = b.get("x.weight", {4, 4}, host_device(), 0.02f);
  EXPECT_EQ(t1.to_vector(), t2.to_vector());
  EXPECT_EQ(unrelated.to_vector(), u2.to_vector());
}

TEST(ParameterSource, FreshInitSpecialStddevs) {
  FreshInit src(1);
  Tensor ones = src.get("norm.gamma", {4}, host_device(), -1.0f);
  for (float v : ones.to_vector()) EXPECT_EQ(v, 1.0f);
  Tensor zeros = src.get("lin.bias", {4}, host_device(), 0.0f);
  for (float v : zeros.to_vector()) EXPECT_EQ(v, 0.0f);
}

TEST(ParameterSource, SharedSourceReturnsSameStorage) {
  std::unordered_map<std::string, Tensor> table;
  table.emplace("w", Tensor::full({2, 2}, 3.0f, host_device()));
  SharedSource src(&table);
  Tensor a = src.get("w", {2, 2}, host_device(), 0.02f);
  Tensor b = src.get("w", {2, 2}, host_device(), 0.02f);
  a.data()[0] = 9.0f;
  EXPECT_FLOAT_EQ(b.data()[0], 9.0f);
}

TEST(ParameterSource, SharedSourceMissingOrWrongShapeThrows) {
  std::unordered_map<std::string, Tensor> table;
  table.emplace("w", Tensor::zeros({2, 2}, host_device()));
  SharedSource src(&table);
  EXPECT_THROW(src.get("missing", {2, 2}, host_device(), 0.0f), StateError);
  EXPECT_THROW(src.get("w", {3, 2}, host_device(), 0.0f), InvalidArgument);
}

TEST(Linear, ForwardMatchesManualMatmul) {
  FreshInit src(3);
  Linear lin("l", 4, 3, true, src, host_device());
  util::Rng rng(5);
  Tensor x = Tensor::empty({2, 4}, host_device());
  rng.fill_normal(x.data(), 8, 1.0f);
  Tensor y = lin.forward(x);
  EXPECT_EQ(y.shape(), (Shape{2, 3}));
  // Bias initialized to zeros, so y == x @ W.
  Tensor manual = tensor::matmul(x, lin.weight());
  EXPECT_EQ(y.to_vector(), manual.to_vector());
}

TEST(Linear, BaseParametersAreFrozen) {
  FreshInit src(3);
  Linear lin("l", 4, 4, true, src, host_device());
  for (const Parameter& p : lin.parameters()) {
    EXPECT_FALSE(p.trainable()) << p.name;
  }
  EXPECT_EQ(lin.parameters().size(), 2u);
  EXPECT_EQ(lin.parameter_bytes(), (4 * 4 + 4) * sizeof(float));
}

TEST(Linear, BitFitBiasIsTrainableClone) {
  std::unordered_map<std::string, Tensor> table;
  table.emplace("l.weight", Tensor::zeros({2, 2}, host_device()));
  table.emplace("l.bias", Tensor::zeros({2}, host_device()));
  SharedSource src(&table);
  Linear lin("l", 2, 2, true, src, host_device(), /*trainable_bias=*/true);
  auto trainable = lin.trainable_parameters();
  ASSERT_EQ(trainable.size(), 1u);
  EXPECT_EQ(trainable[0].name, "l.bias");
  // The clone must not alias the shared tensor.
  trainable[0].value.data()[0] = 5.0f;
  EXPECT_FLOAT_EQ(table.at("l.bias").data()[0], 0.0f);
}

TEST(Lora, StartsAsIdentityDelta) {
  FreshInit src(4);
  util::Rng arng(9);
  LoraLinear lora("q", 6, 6, false, 4, 8.0f, src, host_device(), arng);
  Linear plain("q", 6, 6, false, src, host_device());
  util::Rng rng(11);
  Tensor x = Tensor::empty({3, 6}, host_device());
  rng.fill_normal(x.data(), 18, 1.0f);
  // B = 0 at init, so LoRA output == base output.
  EXPECT_EQ(lora.forward(x).to_vector(), plain.forward(x).to_vector());
}

TEST(Lora, OnlyAdapterTrainable) {
  FreshInit src(4);
  util::Rng arng(9);
  LoraLinear lora("q", 6, 6, true, 2, 4.0f, src, host_device(), arng);
  auto trainable = lora.trainable_parameters();
  ASSERT_EQ(trainable.size(), 2u);
  EXPECT_EQ(trainable[0].name, "q.lora_a");
  EXPECT_EQ(trainable[1].name, "q.lora_b");
  EXPECT_EQ(lora.trainable_parameter_bytes(),
            (6 * 2 + 2 * 6) * sizeof(float));
}

TEST(Lora, MergedDeltaMatchesForwardDifference) {
  FreshInit src(4);
  util::Rng arng(9);
  LoraLinear lora("q", 4, 4, false, 2, 4.0f, src, host_device(), arng);
  // Perturb B so the adapter path is non-trivial.
  util::Rng rng(13);
  Tensor b = lora.lora_b();
  rng.fill_normal(b.data(), static_cast<std::size_t>(b.numel()), 0.3f);

  Tensor x = Tensor::empty({2, 4}, host_device());
  rng.fill_normal(x.data(), 8, 1.0f);
  Tensor with = lora.forward(x);
  Linear plain("q", 4, 4, false, src, host_device());
  Tensor base = plain.forward(x);
  Tensor via_merge = tensor::add(base, tensor::matmul(x, lora.merged_delta()));
  auto a_v = with.to_vector();
  auto b_v = via_merge.to_vector();
  for (std::size_t i = 0; i < a_v.size(); ++i) {
    EXPECT_NEAR(a_v[i], b_v[i], 1e-4f);
  }
}

class LoraRankSweep : public ::testing::TestWithParam<int> {};

TEST_P(LoraRankSweep, GradientsFlowOnlyToAdapter) {
  const int rank = GetParam();
  FreshInit src(21);
  util::Rng arng(22);
  LoraLinear lora("q", 5, 5, false, rank, 2.0f * rank, src, host_device(),
                  arng);
  util::Rng rng(23);
  Tensor b = lora.lora_b();
  rng.fill_normal(b.data(), static_cast<std::size_t>(b.numel()), 0.1f);
  Tensor x = Tensor::empty({2, 5}, host_device());
  rng.fill_normal(x.data(), 10, 1.0f);
  Tensor loss = tensor::sum(lora.forward(x));
  tensor::backward(loss);
  EXPECT_TRUE(lora.lora_a().grad().defined());
  EXPECT_TRUE(lora.lora_b().grad().defined());
  EXPECT_FALSE(lora.weight().grad().defined());
}

INSTANTIATE_TEST_SUITE_P(Ranks, LoraRankSweep, ::testing::Values(1, 2, 4, 8, 16));

TEST(Prefix, PrependsLearnableTokens) {
  util::Rng arng(31);
  PrefixAdapter prefix("p", 3, 4, host_device(), arng);
  Tensor x = Tensor::zeros({2, 5, 4}, host_device());
  Tensor y = prefix.forward(x);
  EXPECT_EQ(y.shape(), (Shape{2, 8, 4}));
  ASSERT_EQ(prefix.trainable_parameters().size(), 1u);
  // Gradient sums over the batch.
  Tensor loss = tensor::sum(y);
  tensor::backward(loss);
  Tensor g = prefix.trainable_parameters()[0].value.grad();
  ASSERT_TRUE(g.defined());
  for (float v : g.to_vector()) EXPECT_FLOAT_EQ(v, 2.0f);
}

TEST(Attention, ShapePreservingAndCausal) {
  FreshInit src(41);
  util::Rng arng(42);
  CausalSelfAttention attn("a", 8, 2, true, no_adapter(), src, host_device(),
                           arng);
  util::Rng rng(43);
  Tensor x = Tensor::empty({2, 5, 8}, host_device());
  rng.fill_normal(x.data(), static_cast<std::size_t>(x.numel()), 0.5f);
  Tensor y = attn.forward(x);
  EXPECT_EQ(y.shape(), (Shape{2, 5, 8}));

  // Causality: changing a later token must not change earlier outputs.
  Tensor x2 = x.clone();
  x2.data()[1 * 5 * 8 - 8] += 10.0f;  // last token of batch row 0
  Tensor y2 = attn.forward(x2);
  auto a_v = y.to_vector();
  auto b_v = y2.to_vector();
  for (int t = 0; t < 4; ++t) {  // all tokens before the perturbed one
    for (int cdim = 0; cdim < 8; ++cdim) {
      EXPECT_NEAR(a_v[static_cast<std::size_t>(t * 8 + cdim)],
                  b_v[static_cast<std::size_t>(t * 8 + cdim)], 1e-5f);
    }
  }
}

TEST(Attention, GradcheckThroughLora) {
  FreshInit src(51);
  util::Rng arng(52);
  CausalSelfAttention attn("a", 4, 2, false, lora_spec(2), src,
                           host_device(), arng);
  // Perturb the LoRA B matrices so the adapter path carries signal.
  util::Rng rng(53);
  std::vector<Tensor> adapters;
  for (Parameter& p : attn.trainable_parameters()) {
    rng.fill_normal(p.value.data(), static_cast<std::size_t>(p.value.numel()),
                    0.2f);
    adapters.push_back(p.value);
  }
  Tensor x = Tensor::empty({1, 3, 4}, host_device());
  rng.fill_normal(x.data(), 12, 0.5f);
  check_gradients([&] { return tensor::sum(attn.forward(x)); }, adapters,
                  1e-2f, 8e-2f, 5e-3f);
}

TEST(TransformerConfig, ValidateAndCount) {
  TransformerConfig c = TransformerConfig::tiny_opt();
  c.validate();
  EXPECT_GT(c.parameter_count(), 0);
  c.n_heads = 5;
  EXPECT_THROW(c.validate(), InvalidArgument);
}

TEST(SplitSpec, Validation) {
  TransformerConfig c = TransformerConfig::tiny_opt();
  SplitSpec s;
  s.validate(c);
  s.front_blocks = 0;
  EXPECT_THROW(s.validate(c), InvalidArgument);
  s.front_blocks = 2;
  s.back_blocks = 2;
  EXPECT_THROW(s.validate(c), InvalidArgument);  // nothing left for server
}

TEST(TransformerBlock, OptAndLlamaForwardShapes) {
  for (auto family : {ModelFamily::Opt, ModelFamily::Llama}) {
    TransformerConfig c = family == ModelFamily::Opt
                              ? TransformerConfig::tiny_opt()
                              : TransformerConfig::tiny_llama();
    FreshInit src(61);
    util::Rng arng(62);
    TransformerBlock block("block0", c, lora_spec(), src, host_device(),
                           arng);
    Tensor x = Tensor::zeros({2, 6, c.dim}, host_device());
    Tensor y = block.forward(x);
    EXPECT_EQ(y.shape(), (Shape{2, 6, c.dim}));
  }
}

TEST(Sections, ParameterCountMatchesConfigFormula) {
  TransformerConfig c = TransformerConfig::tiny_opt();
  SplitSpec split;
  FreshInit src(71);
  LocalModel model(c, split, no_adapter(), src, host_device(), 72);
  std::int64_t actual = 0;
  for (const Parameter& p : model.parameters()) actual += p.value.numel();
  EXPECT_EQ(actual, c.parameter_count());
}

TEST(Sections, LlamaParameterCountMatchesFormula) {
  TransformerConfig c = TransformerConfig::tiny_llama();
  SplitSpec split;
  FreshInit src(71);
  LocalModel model(c, split, no_adapter(), src, host_device(), 72);
  std::int64_t actual = 0;
  for (const Parameter& p : model.parameters()) actual += p.value.numel();
  EXPECT_EQ(actual, c.parameter_count());
}

TEST(Sections, SplitSectionsComposeToLocalForward) {
  // f_o(f_s(f_i(x))) computed via separate sections from the same seeds
  // must equal the LocalModel — the structural core of split fine-tuning.
  TransformerConfig c = TransformerConfig::tiny_opt();
  c.n_layers = 3;
  SplitSpec split;
  split.front_blocks = 1;
  split.back_blocks = 1;
  const std::uint64_t base_seed = 81, adapter_seed = 82;

  FreshInit src_local(base_seed);
  LocalModel local(c, split, lora_spec(), src_local, host_device(),
                   adapter_seed);

  FreshInit src_split(base_seed);
  util::Rng root(adapter_seed);
  util::Rng rng_in = root.fork();
  util::Rng rng_srv = root.fork();
  util::Rng rng_out = root.fork();
  InputSection f_i(c, split, lora_spec(), src_split, host_device(), rng_in);
  ServerSection f_s(c, split, lora_spec(), src_split, host_device(), rng_srv);
  OutputSection f_o(c, split, lora_spec(), src_split, host_device(), rng_out);
  EXPECT_EQ(f_s.block_count(), 1);

  std::vector<std::int32_t> ids{1, 2, 3, 4, 5, 6};
  std::vector<std::int32_t> targets{2, 3, 4, 5, 6, 7};
  tensor::NoGradGuard no_grad;
  const float local_loss = local.loss(ids, targets, 2, 3).item();
  Tensor x_c = f_i.forward(ids, 2, 3);
  Tensor x_s = f_s.forward(x_c);
  const float split_loss = f_o.loss(x_s, f_i.prefix_len(), targets).item();
  EXPECT_FLOAT_EQ(local_loss, split_loss);
}

TEST(Sections, SharedStoreGivesSameOutputsAsFreshInit) {
  // Building the server section over a shared table (Menos) must be
  // numerically identical to building it with FreshInit (vanilla).
  TransformerConfig c = TransformerConfig::tiny_llama();
  SplitSpec split;
  FreshInit fresh(91);

  // Simulate the store: blocks materialized via FreshInit.
  std::unordered_map<std::string, Tensor> table;
  AdapterSpec none = no_adapter();
  util::Rng unused(0);
  for (int i = 0; i < c.n_layers; ++i) {
    TransformerBlock block("block" + std::to_string(i), c, none, fresh,
                           host_device(), unused);
    for (const Parameter& p : block.parameters()) table.emplace(p.name, p.value);
  }
  SharedSource shared(&table);

  util::Rng arng1(7), arng2(7);
  FreshInit fresh2(91);
  ServerSection via_store(c, split, lora_spec(), shared, host_device(), arng1);
  ServerSection via_fresh(c, split, lora_spec(), fresh2, host_device(), arng2);

  util::Rng rng(99);
  Tensor x = Tensor::empty({2, 4, c.dim}, host_device());
  rng.fill_normal(x.data(), static_cast<std::size_t>(x.numel()), 0.5f);
  tensor::NoGradGuard no_grad;
  EXPECT_EQ(via_store.forward(x).to_vector(),
            via_fresh.forward(x).to_vector());
}

TEST(Sections, PrefixAdapterChangesLengthThenStripped) {
  TransformerConfig c = TransformerConfig::tiny_opt();
  SplitSpec split;
  AdapterSpec prefix;
  prefix.type = AdapterType::Prefix;
  prefix.prefix_len = 4;
  FreshInit src(101);
  util::Rng rng_in(1), rng_srv(2), rng_out(3);
  InputSection f_i(c, split, prefix, src, host_device(), rng_in);
  ServerSection f_s(c, split, prefix, src, host_device(), rng_srv);
  OutputSection f_o(c, split, prefix, src, host_device(), rng_out);

  std::vector<std::int32_t> ids{1, 2, 3, 4};
  tensor::NoGradGuard no_grad;
  Tensor x_c = f_i.forward(ids, 2, 2);
  EXPECT_EQ(x_c.shape(), (Shape{2, 2 + 4, c.dim}));
  Tensor logits = f_o.logits(f_s.forward(x_c), f_i.prefix_len());
  EXPECT_EQ(logits.shape(), (Shape{4, c.vocab_size}));
}

TEST(Sections, AdapterBytesMuchSmallerThanBase) {
  // The A << M premise of §2.3.
  TransformerConfig c = TransformerConfig::tiny_opt();
  SplitSpec split;
  FreshInit src(111);
  util::Rng arng(112);
  ServerSection f_s(c, split, lora_spec(8), src, host_device(), arng);
  EXPECT_LT(f_s.trainable_parameter_bytes(),
            f_s.frozen_parameter_bytes() / 10);
}

TEST(Sections, SequenceTooLongThrows) {
  TransformerConfig c = TransformerConfig::tiny_opt();
  c.max_seq = 4;
  SplitSpec split;
  FreshInit src(121);
  util::Rng arng(122);
  InputSection f_i(c, split, no_adapter(), src, host_device(), arng);
  std::vector<std::int32_t> ids(10, 1);
  EXPECT_THROW(f_i.forward(ids, 1, 10), InvalidArgument);
}

}  // namespace
}  // namespace menos::nn
