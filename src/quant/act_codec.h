// Row-wise int8 activation codec for the wire path (net/message.cc).
//
// The heterogeneous-client profile lets a thin-link session opt into int8
// activation transport (ActivationCodec::Int8): Forward/Backward payloads
// shrink ~4x at the cost of one quantize-dequantize round trip per hop.
// The scheme is exactly quant::Scheme::Int8Rowwise — symmetric absmax per
// row, scale = absmax / 127 (1.0 for an all-zero row), codes clamped to
// [-127, 127] — so wire behaviour matches the §6 weight-quantization math
// already pinned by quant_test, and decode(encode(x)) is bit-identical to
// quantize-then-dequantize of x.
//
// This header deliberately avoids tensor/device types: it codes raw float
// spans, so net can link it without pulling the metered-tensor machinery
// into the wire layer.
#pragma once

#include <cstddef>
#include <cstdint>
#include <vector>

namespace menos::quant {

/// Encode `rows * cols` floats (row-major) into one f32 scale per row and
/// one code byte per element. `codes` holds the two's-complement bit
/// pattern of each int8 code. Outputs are resized; existing contents are
/// discarded.
void int8_rowwise_encode(const float* data, std::size_t rows,
                         std::size_t cols, std::vector<float>& scales,
                         std::vector<std::uint8_t>& codes);

/// Reconstruct `rows * cols` floats into `out` (caller-sized). Exact
/// inverse of the quantize-dequantize round trip: out[r, c] =
/// float(int8(codes[r * cols + c])) * scales[r].
void int8_rowwise_decode(const float* scales, const std::uint8_t* codes,
                         std::size_t rows, std::size_t cols, float* out);

}  // namespace menos::quant
