// Discrete-event simulation of multi-client split fine-tuning at the
// paper's scale (V100 GPUs, OPT-1.3B / Llama-2-7B, WAN between Toronto and
// Vancouver).
//
// The simulation drives the REAL sched::Scheduler (the same Algorithm 2
// code the runtime uses) with virtual-time events generated from the
// analytic ModelSpecs. It reproduces Figs 6/7/10 and Tables 1-3; Fig 5
// comes straight from the ModelSpec byte accounting.
#pragma once

#include <memory>
#include <string>
#include <vector>

#include "core/runtime.h"
#include "sched/scheduler.h"
#include "sim/event_loop.h"
#include "sim/model_spec.h"
#include "util/stopwatch.h"

namespace menos::sim {

struct SimConfig {
  ModelSpec spec;
  Environment env;
  core::ServingMode mode = core::ServingMode::MenosOnDemand;
  sched::Policy sched_policy = sched::Policy::FcfsBackfill;
  int num_clients = 1;
  int num_gpus = 1;
  bool cpu_clients = false;  ///< Fig 10: clients without GPUs
  int iterations = 20;       ///< fine-tuning rounds per client
  double client_stagger_s = 0.05;  ///< arrival offset between clients

  /// Optional per-client scale factors modelling heterogeneous batch
  /// sizes / sequence lengths / cut depths (§3.1: clients choose their own
  /// fine-tuning configurations; a shallower cut leaves more trunk blocks
  /// — more transient memory and compute — on the server). Scales the
  /// client's transient memory demands and server compute durations. Empty
  /// = all clients at 1.0; otherwise the size must equal num_clients.
  std::vector<double> client_scale;

  /// Per-client compute-speed multipliers on the CLIENT-side think time (a
  /// phone-class device runs its model halves slower). Empty = all 1.0.
  /// In holds-across-iteration modes a slow client's think time holds its
  /// server allocation — the contention StragglerAware reorders around.
  std::vector<double> client_compute_scale;

  /// Per-client multipliers on WAN transfer times: a lossy link
  /// retransmits (~1/(1-p)), an Int8 activation codec moves ~1/4 the
  /// bytes. Empty = all 1.0.
  std::vector<double> client_net_scale;
};

struct ClientResult {
  util::RunningStat iteration_s;
  util::RunningStat comm_s;
  util::RunningStat compute_s;
  util::RunningStat schedule_s;
  /// Per-operation waits, split by kind: the paper observes "almost no
  /// waiting time for forward requests even for Llama" thanks to
  /// backfilling.
  util::RunningStat forward_wait_s;
  util::RunningStat backward_wait_s;
  int iterations_completed = 0;
  int swaps = 0;
};

struct SimResult {
  bool feasible = true;
  std::string infeasible_reason;

  std::vector<ClientResult> clients;
  // Cross-client means of the per-iteration means.
  double avg_iteration_s = 0.0;
  double avg_comm_s = 0.0;
  double avg_compute_s = 0.0;
  double avg_schedule_s = 0.0;
  double avg_forward_wait_s = 0.0;
  double avg_backward_wait_s = 0.0;

  std::size_t persistent_bytes = 0;      ///< the Fig 5 metric
  std::size_t schedulable_capacity = 0;  ///< per-GPU transient pool
  double makespan_s = 0.0;
  sched::SchedulerStats sched_stats;
  int starved_clients = 0;  ///< clients that never finished (Fig 3(a) risk)

  /// Jain's fairness index over per-client mean iteration times: 1.0 means
  /// every client progressed equally; 1/N means one client hogged the
  /// server. The quantitative form of §4.2's "no clients are starved".
  double fairness_index = 0.0;
};

/// Run one configuration to completion and aggregate.
SimResult run_split_finetune(const SimConfig& config);

}  // namespace menos::sim
