#include "tensor/tensor.h"

#include <cstring>
#include <sstream>

#include "tensor/autograd.h"

namespace menos::tensor {

Index numel_of(const Shape& shape) {
  Index n = 1;
  for (Index d : shape) {
    MENOS_CHECK_MSG(d >= 0, "negative dimension in shape");
    n *= d;
  }
  return n;
}

std::string shape_to_string(const Shape& shape) {
  std::ostringstream os;
  os << "[";
  for (std::size_t i = 0; i < shape.size(); ++i) {
    if (i != 0) os << ", ";
    os << shape[i];
  }
  os << "]";
  return os.str();
}

Storage::Storage(gpusim::Device& device, Index numel)
    : device_(&device), numel_(numel) {
  MENOS_CHECK_MSG(numel >= 0, "negative storage size");
  data_ = static_cast<float*>(
      device.allocate(static_cast<std::size_t>(numel) * sizeof(float)));
}

Storage::~Storage() {
  device_->deallocate(data_, static_cast<std::size_t>(numel_) * sizeof(float));
}

TensorImpl::TensorImpl(std::shared_ptr<Storage> storage_in, Shape shape_in,
                       bool requires_grad_in)
    : storage(std::move(storage_in)),
      shape(std::move(shape_in)),
      requires_grad(requires_grad_in) {
  MENOS_CHECK_MSG(storage == nullptr || numel_of(shape) == storage->numel(),
                  "shape " << shape_to_string(shape)
                           << " does not match storage size");
}

Tensor Tensor::empty(Shape shape, gpusim::Device& device, bool requires_grad) {
  auto storage = std::make_shared<Storage>(device, numel_of(shape));
  return Tensor(std::make_shared<TensorImpl>(std::move(storage),
                                             std::move(shape), requires_grad));
}

Tensor Tensor::zeros(Shape shape, gpusim::Device& device, bool requires_grad) {
  Tensor t = empty(std::move(shape), device, requires_grad);
  std::memset(t.data(), 0, t.bytes());
  return t;
}

Tensor Tensor::full(Shape shape, float value, gpusim::Device& device,
                    bool requires_grad) {
  Tensor t = empty(std::move(shape), device, requires_grad);
  float* p = t.data();
  const Index n = t.numel();
  for (Index i = 0; i < n; ++i) p[i] = value;
  return t;
}

Tensor Tensor::from_span(const float* data, Index n, Shape shape,
                         gpusim::Device& device, bool requires_grad) {
  MENOS_CHECK_MSG(n == numel_of(shape),
                  "data size " << n << " does not match shape "
                               << shape_to_string(shape));
  Tensor t = empty(std::move(shape), device, requires_grad);
  std::memcpy(t.data(), data, static_cast<std::size_t>(n) * sizeof(float));
  return t;
}

Tensor Tensor::from_vector(const std::vector<float>& data, Shape shape,
                           gpusim::Device& device, bool requires_grad) {
  return from_span(data.data(), static_cast<Index>(data.size()),
                   std::move(shape), device, requires_grad);
}

Tensor Tensor::scalar(float value, gpusim::Device& device) {
  return full({1}, value, device);
}

const Shape& Tensor::shape() const {
  MENOS_CHECK_MSG(defined(), "shape() on undefined tensor");
  return impl_->shape;
}

Index Tensor::dim(int i) const {
  const Shape& s = shape();
  MENOS_CHECK_MSG(i >= 0 && i < static_cast<int>(s.size()),
                  "dim index " << i << " out of range for "
                               << shape_to_string(s));
  return s[static_cast<std::size_t>(i)];
}

Index Tensor::numel() const { return numel_of(shape()); }

std::size_t Tensor::bytes() const {
  return static_cast<std::size_t>(numel()) * sizeof(float);
}

float* Tensor::data() {
  MENOS_CHECK_MSG(defined(), "data() on undefined tensor");
  return impl_->storage->data();
}

const float* Tensor::data() const {
  MENOS_CHECK_MSG(defined(), "data() on undefined tensor");
  return impl_->storage->data();
}

gpusim::Device& Tensor::device() const {
  MENOS_CHECK_MSG(defined(), "device() on undefined tensor");
  return impl_->storage->device();
}

float Tensor::item() const {
  MENOS_CHECK_MSG(numel() == 1,
                  "item() requires a single-element tensor, got "
                      << shape_to_string(shape()));
  return data()[0];
}

std::vector<float> Tensor::to_vector() const {
  const float* p = data();
  return std::vector<float>(p, p + numel());
}

bool Tensor::requires_grad() const {
  return defined() && impl_->requires_grad;
}

void Tensor::set_requires_grad(bool value) {
  MENOS_CHECK_MSG(defined(), "set_requires_grad() on undefined tensor");
  MENOS_CHECK_MSG(!(value && impl_->grad_fn != nullptr),
                  "cannot mark a non-leaf tensor as requiring grad");
  impl_->requires_grad = value;
}

Tensor Tensor::grad() const {
  MENOS_CHECK_MSG(defined(), "grad() on undefined tensor");
  return Tensor(impl_->grad);
}

void Tensor::zero_grad() {
  MENOS_CHECK_MSG(defined(), "zero_grad() on undefined tensor");
  impl_->grad.reset();
}

Tensor Tensor::detach() const {
  MENOS_CHECK_MSG(defined(), "detach() on undefined tensor");
  return Tensor(std::make_shared<TensorImpl>(impl_->storage, impl_->shape,
                                             /*requires_grad=*/false));
}

Tensor Tensor::clone() const {
  MENOS_CHECK_MSG(defined(), "clone() on undefined tensor");
  Tensor t = empty(impl_->shape, device());
  std::memcpy(t.data(), data(), bytes());
  return t;
}

Tensor Tensor::to(gpusim::Device& target) const {
  MENOS_CHECK_MSG(defined(), "to() on undefined tensor");
  Tensor t = empty(impl_->shape, target);
  std::memcpy(t.data(), data(), bytes());
  return t;
}

void Tensor::migrate(gpusim::Device& target) {
  MENOS_CHECK_MSG(defined(), "migrate() on undefined tensor");
  MENOS_CHECK_MSG(impl_->grad_fn == nullptr,
                  "migrate() on a tensor attached to the autograd tape");
  if (&device() == &target) return;
  auto moved = std::make_shared<Storage>(target, impl_->storage->numel());
  std::memcpy(moved->data(), impl_->storage->data(), bytes());
  impl_->storage = std::move(moved);
}

void Tensor::copy_from(const Tensor& src) {
  MENOS_CHECK_MSG(defined() && src.defined(), "copy_from with undefined tensor");
  MENOS_CHECK_MSG(numel() == src.numel(),
                  "copy_from numel mismatch: " << numel() << " vs "
                                               << src.numel());
  std::memcpy(data(), src.data(), bytes());
}

namespace {
thread_local bool g_grad_enabled = true;
}  // namespace

bool grad_enabled() noexcept { return g_grad_enabled; }

NoGradGuard::NoGradGuard() : previous_(g_grad_enabled) {
  g_grad_enabled = false;
}

NoGradGuard::~NoGradGuard() { g_grad_enabled = previous_; }

}  // namespace menos::tensor
