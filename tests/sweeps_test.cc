// Broad parameterized sweeps: grouped-query attention, word tokenizer,
// simulator invariants across the whole (model x mode x clients) grid, and
// runtime equivalence across batch/sequence geometries.
#include <gtest/gtest.h>

#include <cmath>

#include "core/client.h"
#include "core/server.h"
#include "net/transport.h"
#include "sim/split_sim.h"
#include "test_helpers.h"

namespace menos {
namespace {

using menos::testing::check_gradients;
using menos::testing::host_device;

// ----- grouped-query attention -----

class GqaSweep : public ::testing::TestWithParam<int> {};

TEST_P(GqaSweep, ShapeAndCausalityHold) {
  const int kv_heads = GetParam();
  nn::FreshInit src(41);
  util::Rng arng(42);
  nn::AdapterSpec none;
  none.type = nn::AdapterType::None;
  nn::CausalSelfAttention attn("a", 8, 4, false, none, src, host_device(),
                               arng, kv_heads);
  EXPECT_EQ(attn.kv_heads(), kv_heads);
  util::Rng rng(43);
  tensor::Tensor x = tensor::Tensor::empty({2, 5, 8}, host_device());
  rng.fill_normal(x.data(), static_cast<std::size_t>(x.numel()), 0.5f);
  tensor::Tensor y = attn.forward(x);
  EXPECT_EQ(y.shape(), (tensor::Shape{2, 5, 8}));

  // Causality survives the kv-head grouping.
  tensor::Tensor x2 = x.clone();
  x2.data()[4 * 8] += 10.0f;  // perturb token 4 of batch row 0
  tensor::Tensor y2 = attn.forward(x2);
  for (int t = 0; t < 4; ++t) {
    for (int c = 0; c < 8; ++c) {
      EXPECT_NEAR(y.data()[t * 8 + c], y2.data()[t * 8 + c], 1e-5f);
    }
  }
}

TEST_P(GqaSweep, KvProjectionShrinks) {
  const int kv_heads = GetParam();
  nn::TransformerConfig c = nn::TransformerConfig::tiny_llama();
  c.n_heads = 4;
  c.n_kv_heads = kv_heads;
  c.validate();
  nn::TransformerConfig full = c;
  full.n_kv_heads = 0;
  if (kv_heads == 4) {
    EXPECT_EQ(c.parameter_count(), full.parameter_count());
  } else {
    EXPECT_LT(c.parameter_count(), full.parameter_count());
  }
  // Real construction agrees with the analytic count.
  nn::FreshInit src(5);
  nn::AdapterSpec none;
  none.type = nn::AdapterType::None;
  nn::SplitSpec split;
  nn::LocalModel model(c, split, none, src, host_device(), 6);
  std::int64_t actual = 0;
  for (const nn::Parameter& p : model.parameters()) actual += p.value.numel();
  EXPECT_EQ(actual, c.parameter_count());
}

TEST_P(GqaSweep, GradcheckThroughGrouping) {
  const int kv_heads = GetParam();
  nn::FreshInit src(51);
  util::Rng arng(52);
  nn::AdapterSpec lora;
  lora.rank = 2;
  lora.alpha = 4.0f;
  nn::CausalSelfAttention attn("a", 4, 2, false, lora, src, host_device(),
                               arng, kv_heads <= 2 ? kv_heads : 2);
  util::Rng rng(53);
  std::vector<tensor::Tensor> adapters;
  for (nn::Parameter& p : attn.trainable_parameters()) {
    rng.fill_normal(p.value.data(), static_cast<std::size_t>(p.value.numel()),
                    0.2f);
    adapters.push_back(p.value);
  }
  tensor::Tensor x = tensor::Tensor::empty({1, 3, 4}, host_device());
  rng.fill_normal(x.data(), 12, 0.5f);
  check_gradients([&] { return tensor::sum(attn.forward(x)); }, adapters,
                  1e-2f, 8e-2f, 5e-3f);
}

INSTANTIATE_TEST_SUITE_P(KvHeads, GqaSweep, ::testing::Values(1, 2, 4));

TEST(Gqa, SplitFineTuningWorksEndToEnd) {
  nn::TransformerConfig model = nn::TransformerConfig::tiny_llama();
  model.dim = 32;
  model.n_heads = 4;
  model.n_kv_heads = 2;
  model.ffn_hidden = 64;
  model.n_layers = 3;
  gpusim::DeviceManager devices(1, 256u << 20);
  core::ServerConfig config;
  config.base_seed = 42;
  core::Server server(config, devices, model);
  net::InprocAcceptor acceptor;
  server.start(acceptor);
  gpusim::DeviceManager cd(1, 256u << 20);
  core::ClientOptions options;
  options.finetune.model = model;
  options.finetune.batch_size = 2;
  options.finetune.seq_len = 8;
  options.finetune.adapter_seed = 8;
  options.base_seed = 42;
  core::Client client(options, acceptor.connect(), cd.gpu(0));
  client.connect();
  data::CharTokenizer tok;
  data::DataLoader loader(
      tok.encode(data::make_shakespeare_like(2000, 1).text), 2, 8, 2);
  for (int i = 0; i < 3; ++i) {
    EXPECT_TRUE(std::isfinite(client.train_step(loader.next()).loss));
  }
  client.disconnect();
  server.stop();
}

// ----- word tokenizer -----

TEST(WordTokenizer, SplitsWordsAndPunctuation) {
  const auto tokens = data::WordTokenizer::split("The king's crown, lost!");
  const std::vector<std::string> expected{"the", "king's", "crown", ",",
                                          "lost", "!"};
  EXPECT_EQ(tokens, expected);
}

TEST(WordTokenizer, VocabularyRankedByFrequency) {
  data::WordTokenizer tok("b b b a a c", 16);
  // <unk>=0, then b (3x), a (2x), c (1x).
  EXPECT_EQ(tok.vocab_size(), 4);
  EXPECT_EQ(tok.encode("b")[0], 1);
  EXPECT_EQ(tok.encode("a")[0], 2);
  EXPECT_EQ(tok.encode("c")[0], 3);
}

TEST(WordTokenizer, UnknownWordsMapToUnk) {
  data::WordTokenizer tok("alpha beta gamma", 16);
  const auto ids = tok.encode("alpha delta");
  EXPECT_NE(ids[0], tok.unk_id());
  EXPECT_EQ(ids[1], tok.unk_id());
}

TEST(WordTokenizer, MaxVocabTruncates) {
  data::WordTokenizer tok("a a a b b c d e f", 3);
  EXPECT_EQ(tok.vocab_size(), 3);  // <unk> + two most frequent
  EXPECT_EQ(tok.encode("f")[0], tok.unk_id());
}

TEST(WordTokenizer, EncodeDecodeRoundTripOnInVocabText) {
  const std::string corpus = data::make_shakespeare_like(4000, 3).text;
  data::WordTokenizer tok(corpus, 256);
  // "noble", "king", "honour", "crown" and "." all occur in the synthetic
  // Shakespeare lexicon; "the" does not and must map to <unk>.
  const std::string text = "noble king. honour the crown.";
  const std::string decoded = tok.decode(tok.encode(text));
  EXPECT_EQ(decoded, "noble king. honour <unk> crown.");
  EXPECT_THROW(tok.decode({tok.vocab_size()}), InvalidArgument);
}

TEST(WordTokenizer, DrivesTrainingPipeline) {
  const data::Corpus corpus = data::make_wikitext_like(6000, 4);
  data::WordTokenizer tok(corpus.text, 64);
  auto tokens = tok.encode(corpus.text);
  data::DataLoader loader(tokens, 2, 8, 5);
  const data::Batch batch = loader.next();
  for (auto id : batch.inputs) {
    EXPECT_GE(id, 0);
    EXPECT_LT(id, tok.vocab_size());
  }
}

// ----- simulator grid invariants -----

struct GridCase {
  bool llama;
  core::ServingMode mode;
  int clients;
};

class SimGrid : public ::testing::TestWithParam<GridCase> {};

TEST_P(SimGrid, InvariantsHold) {
  const GridCase g = GetParam();
  sim::SimConfig config;
  config.spec = g.llama ? sim::ModelSpec::llama2_7b()
                        : sim::ModelSpec::opt_1_3b();
  config.mode = g.mode;
  config.num_clients = g.clients;
  config.iterations = 8;
  const sim::SimResult r = sim::run_split_finetune(config);
  if (!r.feasible) {
    // Infeasibility is only legitimate for vanilla running out of host
    // memory at high client counts.
    EXPECT_EQ(config.mode, core::ServingMode::VanillaTaskSwap);
    EXPECT_GE(g.clients, 5);
    return;
  }
  // Every client completed every iteration (no starvation).
  EXPECT_EQ(r.starved_clients, 0);
  for (const auto& c : r.clients) {
    EXPECT_EQ(c.iterations_completed, 8);
    // Decomposition sanity: an iteration contains its own parts.
    EXPECT_GE(c.iteration_s.mean() + 1e-9,
              c.comm_s.mean() * 0.99);  // comm alone never exceeds total
  }
  // Communication does not grow with the client count (Table 1 property):
  // bounded by the single-client value within noise.
  sim::SimConfig solo = config;
  solo.num_clients = 1;
  const auto r1 = sim::run_split_finetune(solo);
  if (r1.feasible) {
    EXPECT_NEAR(r.avg_comm_s, r1.avg_comm_s, 0.1 + 0.1 * r1.avg_comm_s);
  }
  // Scheduler accounting closed: every grant eventually completed (all
  // memory back in the pool) — total_available is full again.
  EXPECT_GT(r.schedulable_capacity, 0u);
}

INSTANTIATE_TEST_SUITE_P(
    Grid, SimGrid,
    ::testing::Values(
        GridCase{false, core::ServingMode::MenosOnDemand, 1},
        GridCase{false, core::ServingMode::MenosOnDemand, 6},
        GridCase{false, core::ServingMode::MenosReleaseEarly, 4},
        GridCase{false, core::ServingMode::MenosReleaseAfterBackward, 4},
        GridCase{false, core::ServingMode::VanillaTaskSwap, 5},
        GridCase{true, core::ServingMode::MenosOnDemand, 4},
        GridCase{true, core::ServingMode::MenosOnDemand, 8},
        GridCase{true, core::ServingMode::MenosReleaseEarly, 3},
        GridCase{true, core::ServingMode::VanillaTaskSwap, 3},
        GridCase{true, core::ServingMode::VanillaTaskSwap, 6}));

// ----- runtime geometry sweep -----

struct Geometry {
  std::int64_t batch;
  std::int64_t seq;
};

class GeometrySweep : public ::testing::TestWithParam<Geometry> {};

TEST_P(GeometrySweep, SplitMatchesLocalAtThisGeometry) {
  const Geometry geom = GetParam();
  nn::TransformerConfig model = nn::TransformerConfig::tiny_opt();
  model.dim = 32;
  model.n_heads = 2;
  model.ffn_hidden = 64;
  model.n_layers = 3;
  model.max_seq = 32;

  const auto make_loader = [&] {
    data::CharTokenizer tok;
    return data::DataLoader(
        tok.encode(data::make_shakespeare_like(4000, 6).text), geom.batch,
        geom.seq, 11);
  };

  // Local reference.
  std::vector<double> reference;
  {
    auto host = gpusim::make_host_device();
    nn::FreshInit init(42);
    nn::AdapterSpec adapter;
    adapter.rank = 4;
    adapter.alpha = 8.0f;
    nn::SplitSpec split;
    nn::LocalModel m(model, split, adapter, init, *host, 13);
    auto opt = optim::make_optimizer(optim::OptimizerKind::Adam,
                                     m.trainable_parameters(), 3e-3f);
    auto loader = make_loader();
    for (int i = 0; i < 3; ++i) {
      data::Batch b = loader.next();
      tensor::Tensor loss = m.loss(b.inputs, b.targets, geom.batch, geom.seq);
      reference.push_back(loss.item());
      tensor::backward(loss);
      opt->step();
      opt->zero_grad();
    }
  }

  gpusim::DeviceManager devices(1, 256u << 20);
  core::ServerConfig config;
  config.base_seed = 42;
  core::Server server(config, devices, model);
  net::InprocAcceptor acceptor;
  server.start(acceptor);
  gpusim::DeviceManager cd(1, 256u << 20);
  core::ClientOptions options;
  options.finetune.model = model;
  options.finetune.adapter.rank = 4;
  options.finetune.adapter.alpha = 8.0f;
  options.finetune.batch_size = geom.batch;
  options.finetune.seq_len = geom.seq;
  options.finetune.lr = 3e-3f;
  options.finetune.adapter_seed = 13;
  options.base_seed = 42;
  core::Client client(options, acceptor.connect(), cd.gpu(0));
  client.connect();
  auto loader = make_loader();
  for (int i = 0; i < 3; ++i) {
    EXPECT_NEAR(client.train_step(loader.next()).loss,
                reference[static_cast<std::size_t>(i)], 2e-4)
        << "batch=" << geom.batch << " seq=" << geom.seq << " step " << i;
  }
  client.disconnect();
  server.stop();
}

INSTANTIATE_TEST_SUITE_P(Geometries, GeometrySweep,
                         ::testing::Values(Geometry{1, 4}, Geometry{1, 16},
                                           Geometry{2, 8}, Geometry{4, 8},
                                           Geometry{3, 12}, Geometry{8, 4}));

}  // namespace
}  // namespace menos
