// Multi-tenant serving: six clients fine-tune concurrently against one
// server, demonstrating the memory behaviour of Fig 5 on the real runtime:
// persistent GPU memory grows by only (A + O) per client because the base
// model is shared, and the scheduler time-shares the transient pool.
#include <cstdio>
#include <thread>
#include <vector>

#include "core/client.h"
#include "core/server.h"
#include "net/transport.h"
#include "util/bytes.h"

using namespace menos;

int main() {
  constexpr int kClients = 6;
  constexpr int kSteps = 5;

  nn::TransformerConfig model = nn::TransformerConfig::tiny_opt();
  // A deliberately tight GPU: big enough for the shared base and adapters,
  // but only ~2 concurrent backward working sets — so the on-demand
  // scheduler actually has to interleave clients.
  gpusim::DeviceManager devices(1, 48u << 20);
  core::ServerConfig config;
  config.mode = core::ServingMode::MenosOnDemand;
  config.base_seed = 42;
  core::Server server(config, devices, model);
  net::InprocAcceptor acceptor;
  server.start(acceptor);

  const std::size_t base_bytes = server.persistent_gpu_bytes();
  std::printf("shared base model resident: %s\n",
              util::format_bytes(base_bytes).c_str());

  std::vector<std::thread> workers;
  std::vector<double> losses(kClients, 0.0);
  for (int i = 0; i < kClients; ++i) {
    workers.emplace_back([&, i] {
      gpusim::DeviceManager client_devices(1, 1u << 30);
      core::ClientOptions options;
      options.finetune.client_name = "tenant" + std::to_string(i);
      options.finetune.model = model;
      options.finetune.batch_size = 2;
      options.finetune.seq_len = 16;
      options.finetune.lr = 5e-3f;
      options.finetune.adapter_seed = 100 + static_cast<std::uint64_t>(i);
      options.base_seed = 42;
      core::Client client(options, acceptor.connect(),
                          client_devices.gpu(0));
      client.connect();

      data::CharTokenizer tok;
      // Each tenant fine-tunes its own private corpus.
      data::Corpus corpus = data::make_wikitext_like(
          4000, 900 + static_cast<std::uint64_t>(i));
      data::DataLoader loader(tok.encode(corpus.text), 2, 16,
                              static_cast<std::uint64_t>(i));
      for (int s = 0; s < kSteps; ++s) {
        losses[static_cast<std::size_t>(i)] =
            client.train_step(loader.next()).loss;
      }
      client.disconnect();
    });
    // Staggered arrivals, like real tenants.
    std::this_thread::sleep_for(std::chrono::milliseconds(30));
    const std::size_t now = server.persistent_gpu_bytes();
    std::printf("after tenant %d connected: persistent GPU = %s "
                "(+%s for this tenant's A+O)\n",
                i, util::format_bytes(now).c_str(),
                util::format_bytes(now > base_bytes ? now - base_bytes : 0)
                    .c_str());
  }
  for (auto& w : workers) w.join();

  std::printf("\nfinal losses per tenant:");
  for (double l : losses) std::printf(" %.3f", l);
  const auto sched_stats = server.scheduler().stats();
  std::printf("\nscheduler: %llu requests, %llu grants, %llu backfills\n",
              static_cast<unsigned long long>(sched_stats.requests),
              static_cast<unsigned long long>(sched_stats.grants),
              static_cast<unsigned long long>(sched_stats.backfill_grants));
  std::printf("GPU peak during the run: %s of %s capacity (never OOM)\n",
              util::format_bytes(devices.gpu(0).stats().peak).c_str(),
              util::format_bytes(devices.gpu(0).stats().capacity).c_str());
  server.stop();
  return 0;
}
