// Figure 3: GPU memory usage patterns in split fine-tuning under the four
// release policies, measured on the REAL runtime.
//
// A sampler thread polls the metered GPU while one client runs iterations
// over a deliberately slowed network (so the 'W' waiting phases of Fig 3
// are wide enough to see). The printout is a memory-vs-time strip per
// policy plus the quantitative core of the figure: the time-integral of
// allocated memory (byte-seconds) and how long the peak is held.
#include <atomic>
#include <cstdio>
#include <thread>
#include <vector>

#include "core/client.h"
#include "core/server.h"
#include "net/transport.h"
#include "util/bytes.h"

using namespace menos;

namespace {

struct Sample {
  double t;
  std::size_t bytes;
};

struct PatternResult {
  std::vector<Sample> samples;
  std::size_t peak = 0;
  double byte_seconds = 0.0;      ///< integral of allocated memory
  double near_peak_seconds = 0.0; ///< time spent above 80% of peak
  double duration = 0.0;
};

PatternResult run_pattern(core::ServingMode mode) {
  nn::TransformerConfig model = nn::TransformerConfig::tiny_opt();
  gpusim::DeviceManager devices(1, 1u << 30);
  core::ServerConfig config;
  config.mode = mode;
  config.base_seed = 42;
  core::Server server(config, devices, model);

  // Slow "WAN": ~12 ms per message, so waiting phases dominate the
  // iteration the way the paper's Internet link does.
  net::NetworkConditioner wan;
  wan.latency_s = 0.012;
  net::InprocAcceptor acceptor(wan);
  server.start(acceptor);

  gpusim::DeviceManager client_devices(1, 1u << 30);
  core::ClientOptions options;
  options.finetune.client_name = "fig3";
  options.finetune.model = model;
  options.finetune.batch_size = 8;
  options.finetune.seq_len = 32;
  options.finetune.adapter_seed = 3;
  options.base_seed = 42;
  core::Client client(options, acceptor.connect(), client_devices.gpu(0));
  client.connect();

  data::CharTokenizer tok;
  data::DataLoader loader(tok.encode(data::make_wikitext_like(6000, 5).text),
                          8, 32, 7);

  // Baseline = what persists with an idle connected client (shared base +
  // this client's A + O); Fig 3 plots the transient part above it.
  const std::size_t baseline = devices.gpu(0).allocated();

  std::atomic<bool> stop{false};
  PatternResult result;
  std::thread sampler([&] {
    util::Stopwatch sw;
    while (!stop.load(std::memory_order_relaxed)) {
      const std::size_t now = devices.gpu(0).allocated();
      const std::size_t transient = now > baseline ? now - baseline : 0;
      result.samples.push_back(Sample{sw.elapsed_seconds(), transient});
      std::this_thread::sleep_for(std::chrono::microseconds(300));
    }
  });

  for (int i = 0; i < 3; ++i) client.train_step(loader.next());
  stop.store(true);
  sampler.join();
  client.disconnect();
  server.stop();

  for (const Sample& s : result.samples) {
    result.peak = std::max(result.peak, s.bytes);
  }
  for (std::size_t i = 1; i < result.samples.size(); ++i) {
    const double dt = result.samples[i].t - result.samples[i - 1].t;
    result.byte_seconds += dt * static_cast<double>(result.samples[i].bytes);
    if (result.samples[i].bytes >
        static_cast<std::size_t>(0.8 * static_cast<double>(result.peak))) {
      result.near_peak_seconds += dt;
    }
  }
  if (!result.samples.empty()) result.duration = result.samples.back().t;
  return result;
}

void print_strip(const PatternResult& r, std::size_t global_peak) {
  constexpr int kWidth = 96;
  static const char* kLevels = " .:-=+*#";
  std::string strip(kWidth, ' ');
  if (r.samples.empty() || r.duration <= 0.0) return;
  // Max within each time bucket, scaled against the cross-policy peak.
  std::vector<std::size_t> bucket(kWidth, 0);
  for (const Sample& s : r.samples) {
    int b = static_cast<int>(s.t / r.duration * kWidth);
    if (b >= kWidth) b = kWidth - 1;
    bucket[static_cast<std::size_t>(b)] =
        std::max(bucket[static_cast<std::size_t>(b)], s.bytes);
  }
  for (int b = 0; b < kWidth; ++b) {
    const double frac = global_peak == 0
                            ? 0.0
                            : static_cast<double>(bucket[static_cast<std::size_t>(b)]) /
                                  static_cast<double>(global_peak);
    int level = static_cast<int>(frac * 7.999);
    strip[static_cast<std::size_t>(b)] = kLevels[level];
  }
  std::printf("  |%s|\n", strip.c_str());
}

}  // namespace

int main() {
  std::printf(
      "==========================================================\n"
      "Fig 3 — GPU memory usage patterns under the release policies\n"
      "Measured on the real runtime (transient bytes above the persistent\n"
      "baseline, 3 iterations, ~12 ms per network message).\n"
      "==========================================================\n\n");

  struct Row {
    const char* label;
    core::ServingMode mode;
  };
  const Row rows[] = {
      {"(a) preserve everything", core::ServingMode::MenosPreserveAll},
      {"(b) release after backward", core::ServingMode::MenosReleaseAfterBackward},
      {"(c) release while waiting g_c", core::ServingMode::MenosReleaseEarly},
      {"(d) + non-gradient first forward", core::ServingMode::MenosOnDemand},
  };

  std::vector<PatternResult> results;
  std::size_t global_peak = 0;
  for (const Row& row : rows) {
    results.push_back(run_pattern(row.mode));
    global_peak = std::max(global_peak, results.back().peak);
  }

  for (std::size_t i = 0; i < results.size(); ++i) {
    const PatternResult& r = results[i];
    std::printf("%s\n", rows[i].label);
    print_strip(r, global_peak);
    std::printf(
        "  peak %-10s  memory-time integral %-10.4f MB*s  time near peak "
        "%.0f%%\n\n",
        util::format_bytes(r.peak).c_str(), r.byte_seconds / 1e6,
        100.0 * r.near_peak_seconds / r.duration);
  }

  std::printf(
      "Reading (matches Fig 3): (a) holds the full working set through\n"
      "every waiting phase; (b) frees it only between iterations; (c)\n"
      "frees it during the long wait for gradients; (d) additionally\n"
      "avoids materializing the activation cache during the first forward,\n"
      "so peak memory is held only during the short backward burst.\n");
  return 0;
}
