// Minimal thread-safe leveled logger.
//
// Usage:   MENOS_LOG(Info) << "served client " << id;
// Levels below the global threshold are compiled to a no-op stream drain.
#pragma once

#include <chrono>
#include <iostream>
#include <mutex>
#include <sstream>
#include <string>

namespace menos::util {

enum class LogLevel { Trace = 0, Debug = 1, Info = 2, Warn = 3, Error = 4 };

/// Global log threshold; messages below it are dropped. Defaults to Warn so
/// tests and benches stay quiet unless they opt in.
LogLevel log_threshold() noexcept;
void set_log_threshold(LogLevel level) noexcept;

const char* log_level_name(LogLevel level) noexcept;

namespace detail {

/// Collects one message and emits it atomically on destruction.
class LogLine {
 public:
  LogLine(LogLevel level, const char* file, int line);
  LogLine(const LogLine&) = delete;
  LogLine& operator=(const LogLine&) = delete;
  ~LogLine();

  template <typename T>
  LogLine& operator<<(const T& value) {
    stream_ << value;
    return *this;
  }

 private:
  LogLevel level_;
  std::ostringstream stream_;
};

/// Swallows the streamed expression when the level is filtered out.
struct NullLine {
  template <typename T>
  NullLine& operator<<(const T&) {
    return *this;
  }
};

}  // namespace detail
}  // namespace menos::util

#define MENOS_LOG(level)                                                \
  if (::menos::util::LogLevel::level < ::menos::util::log_threshold()) \
    ;                                                                   \
  else                                                                  \
    ::menos::util::detail::LogLine(::menos::util::LogLevel::level,      \
                                   __FILE__, __LINE__)
