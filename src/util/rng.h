// Deterministic pseudo-random number generation.
//
// All randomness in Menos flows through Rng so that every experiment is
// reproducible from a single seed. The engine is xoshiro256**, seeded via
// splitmix64 (the reference initialisation recommended by its authors).
#pragma once

#include <cstdint>
#include <vector>

namespace menos::util {

class Rng {
 public:
  explicit Rng(std::uint64_t seed = 0x9e3779b97f4a7c15ULL);

  /// Uniform 64-bit value.
  std::uint64_t next_u64() noexcept;

  /// Uniform in [0, 1).
  double next_double() noexcept;

  /// Uniform float in [lo, hi).
  float uniform(float lo, float hi) noexcept;

  /// Uniform integer in [0, n). Precondition: n > 0.
  std::uint64_t next_below(std::uint64_t n) noexcept;

  /// Standard normal via Box–Muller (cached second variate).
  float normal() noexcept;

  /// Normal with given mean/stddev.
  float normal(float mean, float stddev) noexcept;

  /// Derive an independent child stream (for per-client generators).
  Rng fork() noexcept;

  /// Fill a buffer with i.i.d. normal(0, stddev) values.
  void fill_normal(float* data, std::size_t n, float stddev) noexcept;

  /// Fill with uniform values in [lo, hi).
  void fill_uniform(float* data, std::size_t n, float lo, float hi) noexcept;

 private:
  std::uint64_t state_[4];
  bool has_cached_normal_ = false;
  float cached_normal_ = 0.0f;
};

}  // namespace menos::util
