# Empty compiler generated dependencies file for menos_quant.
# This may be replaced when dependencies are built.
