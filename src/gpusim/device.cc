#include "gpusim/device.h"

#include <cstdlib>
#include <limits>
#include <mutex>
#include <new>

#include "util/check.h"

namespace menos::gpusim {
namespace {

/// Shared accounting + heap-backed allocation. Host and SimGpu differ only
/// in whether a capacity is enforced.
class MeteredDevice final : public Device {
 public:
  MeteredDevice(DeviceKind kind, std::string name, std::size_t capacity)
      : kind_(kind), name_(std::move(name)), capacity_(capacity) {}

  DeviceKind kind() const noexcept override { return kind_; }
  const std::string& name() const noexcept override { return name_; }

  void* allocate(std::size_t bytes) override {
    {
      std::lock_guard<std::mutex> lock(mutex_);
      if (capacity_ != 0 && allocated_ + bytes > capacity_) {
        throw OutOfMemory("device '" + name_ + "' out of memory", bytes,
                          capacity_ - allocated_);
      }
      allocated_ += bytes;
      if (allocated_ > peak_) peak_ = allocated_;
      ++lifetime_allocs_;
      lifetime_bytes_ += bytes;
    }
    if (bytes == 0) {
      // Distinct non-null sentinel; operator new(0) is legal and unique.
      return ::operator new(1);
    }
    try {
      return ::operator new(bytes);
    } catch (const std::bad_alloc&) {
      std::lock_guard<std::mutex> lock(mutex_);
      allocated_ -= bytes;
      throw OutOfMemory("host heap exhausted backing device '" + name_ + "'",
                        bytes, 0);
    }
  }

  void deallocate(void* ptr, std::size_t bytes) noexcept override {
    if (ptr == nullptr) return;
    ::operator delete(ptr);
    std::lock_guard<std::mutex> lock(mutex_);
    allocated_ -= bytes;
    ++lifetime_frees_;
  }

  MemoryStats stats() const override {
    std::lock_guard<std::mutex> lock(mutex_);
    MemoryStats s;
    s.capacity = capacity_;
    s.allocated = allocated_;
    s.peak = peak_;
    s.lifetime_allocs = lifetime_allocs_;
    s.lifetime_frees = lifetime_frees_;
    s.lifetime_bytes = lifetime_bytes_;
    return s;
  }

  void reset_peak() override {
    std::lock_guard<std::mutex> lock(mutex_);
    peak_ = allocated_;
  }

 private:
  DeviceKind kind_;
  std::string name_;
  std::size_t capacity_;  // 0 = unlimited

  mutable std::mutex mutex_;
  std::size_t allocated_ = 0;
  std::size_t peak_ = 0;
  std::size_t lifetime_allocs_ = 0;
  std::size_t lifetime_frees_ = 0;
  std::size_t lifetime_bytes_ = 0;
};

}  // namespace

std::size_t Device::available() const {
  const MemoryStats s = stats();
  if (s.capacity == 0) return std::numeric_limits<std::size_t>::max();
  return s.capacity - s.allocated;
}

std::unique_ptr<Device> make_host_device(std::string name) {
  return std::make_unique<MeteredDevice>(DeviceKind::Host, std::move(name), 0);
}

std::unique_ptr<Device> make_sim_gpu(std::string name,
                                     std::size_t capacity_bytes) {
  MENOS_CHECK_MSG(capacity_bytes > 0, "SimGpu capacity must be positive");
  return std::make_unique<MeteredDevice>(DeviceKind::SimGpu, std::move(name),
                                         capacity_bytes);
}

DeviceManager::DeviceManager(int gpu_count, std::size_t gpu_capacity_bytes)
    : host_(make_host_device()) {
  MENOS_CHECK_MSG(gpu_count >= 0, "negative GPU count");
  gpus_.reserve(static_cast<std::size_t>(gpu_count));
  for (int i = 0; i < gpu_count; ++i) {
    gpus_.push_back(make_sim_gpu("gpu" + std::to_string(i), gpu_capacity_bytes));
  }
}

Device& DeviceManager::gpu(int index) {
  MENOS_CHECK_MSG(index >= 0 && index < gpu_count(),
                  "gpu index " << index << " out of range [0," << gpu_count()
                               << ")");
  return *gpus_[static_cast<std::size_t>(index)];
}

const Device& DeviceManager::gpu(int index) const {
  MENOS_CHECK_MSG(index >= 0 && index < gpu_count(),
                  "gpu index " << index << " out of range [0," << gpu_count()
                               << ")");
  return *gpus_[static_cast<std::size_t>(index)];
}

Device& DeviceManager::least_loaded_gpu() {
  MENOS_CHECK_MSG(!gpus_.empty(), "DeviceManager has no GPUs");
  Device* best = gpus_[0].get();
  for (auto& g : gpus_) {
    if (g->available() > best->available()) best = g.get();
  }
  return *best;
}

std::size_t DeviceManager::total_gpu_available() const {
  std::size_t total = 0;
  for (const auto& g : gpus_) total += g->available();
  return total;
}

std::size_t DeviceManager::total_gpu_capacity() const {
  std::size_t total = 0;
  for (const auto& g : gpus_) total += g->stats().capacity;
  return total;
}

}  // namespace menos::gpusim
