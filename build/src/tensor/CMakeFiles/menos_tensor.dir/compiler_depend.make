# Empty compiler generated dependencies file for menos_tensor.
# This may be replaced when dependencies are built.
