#include "quant/quantize.h"

#include <array>
#include <cmath>
#include <cstring>
#include <vector>

#include "tensor/graph.h"

namespace menos::quant {
namespace {

/// The QLoRA NF4 codebook: quantiles of a standard normal, normalized to
/// [-1, 1] (Dettmers et al. 2023, "QLoRA: Efficient Finetuning of
/// Quantized LLMs").
constexpr std::array<float, 16> kNf4Codebook = {
    -1.0f,        -0.69619280f, -0.52507305f, -0.39491749f,
    -0.28444138f, -0.18477343f, -0.09105004f, 0.0f,
    0.07958030f,  0.16093020f,  0.24611230f,  0.33791524f,
    0.44070983f,  0.56261700f,  0.72295684f,  1.0f};

constexpr int kNf4Block = 64;

std::uint8_t nearest_nf4(float normalized) noexcept {
  // 16 entries: linear scan is branch-predictable and plenty fast for
  // one-time weight quantization.
  int best = 0;
  float best_err = std::fabs(normalized - kNf4Codebook[0]);
  for (int i = 1; i < 16; ++i) {
    const float err = std::fabs(normalized - kNf4Codebook[static_cast<std::size_t>(i)]);
    if (err < best_err) {
      best_err = err;
      best = i;
    }
  }
  return static_cast<std::uint8_t>(best);
}

/// Metered raw device buffer.
class RawBuffer {
 public:
  RawBuffer(gpusim::Device& device, std::size_t bytes)
      : device_(&device),
        bytes_(bytes),
        data_(static_cast<std::uint8_t*>(device.allocate(bytes))) {}
  ~RawBuffer() { device_->deallocate(data_, bytes_); }
  RawBuffer(const RawBuffer&) = delete;
  RawBuffer& operator=(const RawBuffer&) = delete;

  std::uint8_t* data() noexcept { return data_; }
  const std::uint8_t* data() const noexcept { return data_; }
  std::size_t bytes() const noexcept { return bytes_; }

 private:
  gpusim::Device* device_;
  std::size_t bytes_;
  std::uint8_t* data_;
};

}  // namespace

const char* scheme_name(Scheme scheme) noexcept {
  switch (scheme) {
    case Scheme::Int8Rowwise: return "int8-rowwise";
    case Scheme::Nf4Block:    return "nf4-block";
  }
  return "?";
}

int scheme_bits(Scheme scheme) noexcept {
  return scheme == Scheme::Int8Rowwise ? 8 : 4;
}

struct QuantizedTensor::Impl {
  tensor::Shape shape;
  tensor::Index rows = 0;
  tensor::Index cols = 0;
  Scheme scheme = Scheme::Int8Rowwise;
  std::unique_ptr<RawBuffer> codes;
  std::unique_ptr<RawBuffer> scales;  // float-typed

  const float* scale_data() const {
    return reinterpret_cast<const float*>(scales->data());
  }
  float* scale_data() {
    return reinterpret_cast<float*>(scales->data());
  }
  tensor::Index blocks_per_row() const {
    return (cols + kNf4Block - 1) / kNf4Block;
  }
};

QuantizedTensor QuantizedTensor::quantize(const tensor::Tensor& src,
                                          Scheme scheme,
                                          gpusim::Device& device) {
  MENOS_CHECK_MSG(src.defined() && src.ndim() == 2,
                  "quantize expects a 2-D weight matrix");
  auto impl = std::make_shared<Impl>();
  impl->shape = src.shape();
  impl->rows = src.dim(0);
  impl->cols = src.dim(1);
  impl->scheme = scheme;
  const float* w = src.data();
  const tensor::Index rows = impl->rows;
  const tensor::Index cols = impl->cols;

  if (scheme == Scheme::Int8Rowwise) {
    impl->codes = std::make_unique<RawBuffer>(
        device, static_cast<std::size_t>(rows * cols));
    impl->scales = std::make_unique<RawBuffer>(
        device, static_cast<std::size_t>(rows) * sizeof(float));
    auto* codes = reinterpret_cast<std::int8_t*>(impl->codes->data());
    float* scales = impl->scale_data();
    for (tensor::Index r = 0; r < rows; ++r) {
      const float* row = w + r * cols;
      float absmax = 0.0f;
      for (tensor::Index c = 0; c < cols; ++c) {
        absmax = std::max(absmax, std::fabs(row[c]));
      }
      const float scale = absmax > 0.0f ? absmax / 127.0f : 1.0f;
      scales[r] = scale;
      for (tensor::Index c = 0; c < cols; ++c) {
        const float q = std::round(row[c] / scale);
        codes[r * cols + c] =
            static_cast<std::int8_t>(std::max(-127.0f, std::min(127.0f, q)));
      }
    }
  } else {
    const tensor::Index bpr = (cols + kNf4Block - 1) / kNf4Block;
    const std::size_t packed =
        static_cast<std::size_t>(rows) *
        static_cast<std::size_t>((cols + 1) / 2);
    impl->codes = std::make_unique<RawBuffer>(device, packed);
    impl->scales = std::make_unique<RawBuffer>(
        device, static_cast<std::size_t>(rows * bpr) * sizeof(float));
    std::uint8_t* codes = impl->codes->data();
    std::memset(codes, 0, packed);
    float* scales = impl->scale_data();
    for (tensor::Index r = 0; r < rows; ++r) {
      const float* row = w + r * cols;
      for (tensor::Index b = 0; b < bpr; ++b) {
        const tensor::Index begin = b * kNf4Block;
        const tensor::Index end = std::min(cols, begin + kNf4Block);
        float absmax = 0.0f;
        for (tensor::Index c = begin; c < end; ++c) {
          absmax = std::max(absmax, std::fabs(row[c]));
        }
        const float scale = absmax > 0.0f ? absmax : 1.0f;
        scales[r * bpr + b] = scale;
        for (tensor::Index c = begin; c < end; ++c) {
          const std::uint8_t code = nearest_nf4(row[c] / scale);
          const tensor::Index flat = r * ((cols + 1) / 2) + c / 2;
          if (c % 2 == 0) {
            codes[flat] = static_cast<std::uint8_t>(
                (codes[flat] & 0xf0u) | code);
          } else {
            codes[flat] = static_cast<std::uint8_t>(
                (codes[flat] & 0x0fu) | (code << 4));
          }
        }
      }
    }
  }

  QuantizedTensor q;
  q.impl_ = std::move(impl);
  return q;
}

const tensor::Shape& QuantizedTensor::shape() const {
  MENOS_CHECK_MSG(defined(), "shape() on undefined QuantizedTensor");
  return impl_->shape;
}

tensor::Index QuantizedTensor::rows() const { return shape()[0]; }
tensor::Index QuantizedTensor::cols() const { return shape()[1]; }

Scheme QuantizedTensor::scheme() const {
  MENOS_CHECK_MSG(defined(), "scheme() on undefined QuantizedTensor");
  return impl_->scheme;
}

std::size_t QuantizedTensor::bytes() const {
  MENOS_CHECK_MSG(defined(), "bytes() on undefined QuantizedTensor");
  return impl_->codes->bytes() + impl_->scales->bytes();
}

void QuantizedTensor::dequantize_row(tensor::Index row, float* out) const {
  MENOS_CHECK_MSG(defined(), "dequantize_row on undefined QuantizedTensor");
  const Impl& im = *impl_;
  MENOS_CHECK_MSG(row >= 0 && row < im.rows, "row out of range");
  const tensor::Index cols = im.cols;
  if (im.scheme == Scheme::Int8Rowwise) {
    const auto* codes = reinterpret_cast<const std::int8_t*>(im.codes->data());
    const float scale = im.scale_data()[row];
    const std::int8_t* r = codes + row * cols;
    for (tensor::Index c = 0; c < cols; ++c) {
      out[c] = static_cast<float>(r[c]) * scale;
    }
    return;
  }
  const std::uint8_t* codes = im.codes->data();
  const float* scales = im.scale_data();
  const tensor::Index bpr = im.blocks_per_row();
  const tensor::Index row_bytes = (cols + 1) / 2;
  for (tensor::Index c = 0; c < cols; ++c) {
    const std::uint8_t byte = codes[row * row_bytes + c / 2];
    const std::uint8_t code = c % 2 == 0 ? (byte & 0x0fu) : (byte >> 4);
    out[c] = kNf4Codebook[code] * scales[row * bpr + c / kNf4Block];
  }
}

tensor::Tensor QuantizedTensor::dequantize(gpusim::Device& device) const {
  tensor::Tensor out = tensor::Tensor::empty(shape(), device);
  for (tensor::Index r = 0; r < rows(); ++r) {
    dequantize_row(r, out.data() + r * cols());
  }
  return out;
}

tensor::Tensor quantized_matmul(const tensor::Tensor& x,
                                const QuantizedTensor& w) {
  using namespace menos::tensor;
  MENOS_CHECK_MSG(x.defined() && w.defined(), "quantized_matmul operands");
  MENOS_CHECK_MSG(x.ndim() >= 2, "quantized_matmul needs ndim >= 2 input");
  const Index in = w.rows();
  const Index out_dim = w.cols();
  MENOS_CHECK_MSG(x.shape().back() == in,
                  "quantized_matmul: inner dims " << x.shape().back()
                                                  << " vs " << in);
  const Index m = x.numel() / in;
  Shape out_shape = x.shape();
  out_shape.back() = out_dim;
  Tensor y = Tensor::zeros(out_shape, x.device());

  // Streaming: dequantize one weight row (out_dim floats) at a time.
  std::vector<float> wrow(static_cast<std::size_t>(out_dim));
  const float* px = x.data();
  float* py = y.data();
  for (Index k = 0; k < in; ++k) {
    w.dequantize_row(k, wrow.data());
    for (Index i = 0; i < m; ++i) {
      const float xv = px[i * in + k];
      if (xv == 0.0f) continue;
      float* yrow = py + i * out_dim;
      for (Index j = 0; j < out_dim; ++j) yrow[j] += xv * wrow[j];
    }
  }

  if (tensor::detail::should_record({x})) {
    Tensor saved_x = x.detach();
    tensor::detail::attach_node(
        y, "quantized_matmul", {x},
        [w, in, out_dim, m](const Tensor& g) {
          // dx = g @ W^T, streaming the same way; W is frozen so there is
          // no weight gradient (the adapter-based fine-tuning premise).
          Tensor dx = Tensor::zeros({m, in}, g.device());
          std::vector<float> wrow2(static_cast<std::size_t>(out_dim));
          const float* pg = g.data();
          float* pdx = dx.data();
          for (Index k = 0; k < in; ++k) {
            w.dequantize_row(k, wrow2.data());
            for (Index i = 0; i < m; ++i) {
              const float* grow = pg + i * out_dim;
              float acc = 0.0f;
              for (Index j = 0; j < out_dim; ++j) acc += grow[j] * wrow2[j];
              pdx[i * in + k] = acc;
            }
          }
          return std::vector<Tensor>{dx};
        });
  }
  // Step-graph capture: the bespoke tape node above is invisible to the
  // generic replay switch, so record a custom node whose closure
  // re-dispatches this function — replay re-runs the attach above and the
  // result is bit-identical to eager (tests/graph_test.cc).
  tensor::graph::detail::note_custom(
      "quantized_matmul", {x}, y,
      [w](const std::vector<Tensor>& ins) { return quantized_matmul(ins[0], w); });
  return y;
}

double reconstruction_rmse(const tensor::Tensor& original,
                           const QuantizedTensor& quantized) {
  MENOS_CHECK_MSG(original.shape() == quantized.shape(),
                  "rmse: shape mismatch");
  std::vector<float> row(static_cast<std::size_t>(quantized.cols()));
  const float* p = original.data();
  double acc = 0.0;
  for (tensor::Index r = 0; r < quantized.rows(); ++r) {
    quantized.dequantize_row(r, row.data());
    for (tensor::Index c = 0; c < quantized.cols(); ++c) {
      const double d = static_cast<double>(p[r * quantized.cols() + c]) -
                       static_cast<double>(row[static_cast<std::size_t>(c)]);
      acc += d * d;
    }
  }
  return std::sqrt(acc / static_cast<double>(original.numel()));
}

}  // namespace menos::quant
