#include <gtest/gtest.h>

#include <cmath>

#include "optim/optimizer.h"
#include "tensor/ops.h"
#include "test_helpers.h"

namespace menos::optim {
namespace {

using menos::testing::host_device;
using tensor::Tensor;

nn::Parameter make_param(const std::string& name, std::vector<float> values) {
  Tensor t = Tensor::from_vector(values, {static_cast<tensor::Index>(values.size())},
                                 host_device());
  t.set_requires_grad(true);
  return nn::Parameter{name, t};
}

void set_grad(nn::Parameter& p, const std::vector<float>& g) {
  Tensor gt = Tensor::from_vector(
      g, {static_cast<tensor::Index>(g.size())}, host_device());
  p.value.zero_grad();
  tensor::detail::accumulate_grad(p.value, gt);
}

TEST(Optimizer, RejectsFrozenParameters) {
  Tensor frozen = Tensor::zeros({2}, host_device());
  EXPECT_THROW(Sgd({nn::Parameter{"w", frozen}}, SgdOptions{}),
               InvalidArgument);
}

TEST(Sgd, PlainStep) {
  auto p = make_param("w", {1.0f, 2.0f});
  SgdOptions o;
  o.lr = 0.1f;
  Sgd opt({p}, o);
  set_grad(p, {1.0f, -2.0f});
  opt.step();
  auto v = p.value.to_vector();
  EXPECT_FLOAT_EQ(v[0], 0.9f);
  EXPECT_FLOAT_EQ(v[1], 2.2f);
  EXPECT_EQ(opt.state_bytes(), 0u);
}

TEST(Sgd, SkipsParamsWithoutGrad) {
  auto p = make_param("w", {1.0f});
  SgdOptions o;
  o.lr = 0.5f;
  Sgd opt({p}, o);
  opt.step();  // no grad accumulated
  EXPECT_FLOAT_EQ(p.value.to_vector()[0], 1.0f);
}

TEST(Sgd, MomentumAccumulates) {
  auto p = make_param("w", {0.0f});
  SgdOptions o;
  o.lr = 1.0f;
  o.momentum = 0.5f;
  Sgd opt({p}, o);
  set_grad(p, {1.0f});
  opt.step();  // v=1, w=-1
  EXPECT_FLOAT_EQ(p.value.to_vector()[0], -1.0f);
  set_grad(p, {1.0f});
  opt.step();  // v=1.5, w=-2.5
  EXPECT_FLOAT_EQ(p.value.to_vector()[0], -2.5f);
  EXPECT_EQ(opt.state_bytes(), sizeof(float));
  EXPECT_EQ(opt.state_tensors().size(), 1u);
}

TEST(Sgd, WeightDecayPullsTowardZero) {
  auto p = make_param("w", {10.0f});
  SgdOptions o;
  o.lr = 0.1f;
  o.weight_decay = 1.0f;
  Sgd opt({p}, o);
  set_grad(p, {0.0f});
  opt.step();
  EXPECT_FLOAT_EQ(p.value.to_vector()[0], 9.0f);
}

TEST(Adam, FirstStepIsLrSized) {
  // With bias correction, the first Adam step is ~lr * sign(grad).
  auto p = make_param("w", {1.0f, 1.0f});
  AdamOptions o;
  o.lr = 0.1f;
  Adam opt({p}, o);
  set_grad(p, {3.0f, -0.5f});
  opt.step();
  auto v = p.value.to_vector();
  EXPECT_NEAR(v[0], 0.9f, 1e-4f);
  EXPECT_NEAR(v[1], 1.1f, 1e-4f);
}

TEST(Adam, StateBytesAreTwicePerParam) {
  auto p = make_param("w", {1, 2, 3, 4});
  Adam opt({p}, AdamOptions{});
  EXPECT_EQ(opt.state_bytes(), 2 * 4 * sizeof(float));
  EXPECT_EQ(opt.state_tensors().size(), 2u);
}

TEST(Adam, ConvergesOnQuadratic) {
  // minimize (w - 3)^2
  auto p = make_param("w", {0.0f});
  AdamOptions o;
  o.lr = 0.1f;
  Adam opt({p}, o);
  for (int i = 0; i < 500; ++i) {
    const float w = p.value.to_vector()[0];
    set_grad(p, {2.0f * (w - 3.0f)});
    opt.step();
  }
  EXPECT_NEAR(p.value.to_vector()[0], 3.0f, 1e-2f);
}

TEST(AdamW, DecaysWeightsWithoutGradientSignal) {
  auto p = make_param("w", {10.0f});
  AdamOptions o;
  o.lr = 0.1f;
  o.weight_decay = 0.1f;
  Adam opt({p}, o);
  set_grad(p, {0.0f});
  opt.step();
  // Pure decoupled decay: w -= lr * wd * w = 10 - 0.1*0.1*10.
  EXPECT_NEAR(p.value.to_vector()[0], 9.9f, 1e-4f);
}

TEST(Factory, MakesAllKinds) {
  for (auto kind :
       {OptimizerKind::Sgd, OptimizerKind::Adam, OptimizerKind::AdamW}) {
    auto p = make_param("w", {1.0f});
    auto opt = make_optimizer(kind, {p}, 0.01f);
    ASSERT_NE(opt, nullptr);
    set_grad(p, {1.0f});
    opt->step();
    EXPECT_LT(p.value.to_vector()[0], 1.0f);
  }
  EXPECT_STREQ(optimizer_kind_name(OptimizerKind::AdamW), "adamw");
}

TEST(Optimizer, ZeroGradClearsAll) {
  auto p = make_param("w", {1.0f});
  Sgd opt({p}, SgdOptions{});
  set_grad(p, {1.0f});
  EXPECT_TRUE(p.value.grad().defined());
  opt.zero_grad();
  EXPECT_FALSE(p.value.grad().defined());
}

TEST(Optimizer, TrainingLowersLossThroughRealGraph) {
  // End-to-end: a LoRA-style low-rank pair fit to a random linear target.
  util::Rng rng(5);
  Tensor x = Tensor::empty({8, 4}, host_device());
  rng.fill_normal(x.data(), 32, 1.0f);
  // A realizable low-rank target, so the loss floor is ~0.
  Tensor true_a = Tensor::empty({4, 2}, host_device());
  Tensor true_b = Tensor::empty({2, 4}, host_device());
  rng.fill_normal(true_a.data(), 8, 0.7f);
  rng.fill_normal(true_b.data(), 8, 0.7f);
  Tensor target = tensor::matmul(tensor::matmul(x, true_a), true_b);
  Tensor a = menos::testing::random_leaf({4, 2}, rng, host_device(), 0.3f);
  Tensor b = menos::testing::random_leaf({2, 4}, rng, host_device(), 0.3f);
  auto opt = make_optimizer(OptimizerKind::Adam,
                            {nn::Parameter{"a", a}, nn::Parameter{"b", b}},
                            0.05f);
  const auto loss_fn = [&] {
    Tensor pred = tensor::matmul(tensor::matmul(x, a), b);
    Tensor diff = tensor::sub(pred, target);
    return tensor::mean(tensor::mul(diff, diff));
  };
  const float initial = loss_fn().item();
  for (int i = 0; i < 200; ++i) {
    Tensor loss = loss_fn();
    tensor::backward(loss);
    opt->step();
    opt->zero_grad();
  }
  EXPECT_LT(loss_fn().item(), initial * 0.5f);
}

}  // namespace
}  // namespace menos::optim
