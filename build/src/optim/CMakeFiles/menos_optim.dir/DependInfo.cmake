
# Consider dependencies only in project.
set(CMAKE_DEPENDS_IN_PROJECT_ONLY OFF)

# The set of languages for which implicit dependencies are needed:
set(CMAKE_DEPENDS_LANGUAGES
  )

# The set of dependency files which are needed:
set(CMAKE_DEPENDS_DEPENDENCY_FILES
  "/root/repo/src/optim/lr_schedule.cc" "src/optim/CMakeFiles/menos_optim.dir/lr_schedule.cc.o" "gcc" "src/optim/CMakeFiles/menos_optim.dir/lr_schedule.cc.o.d"
  "/root/repo/src/optim/optimizer.cc" "src/optim/CMakeFiles/menos_optim.dir/optimizer.cc.o" "gcc" "src/optim/CMakeFiles/menos_optim.dir/optimizer.cc.o.d"
  )

# Targets to which this target links.
set(CMAKE_TARGET_LINKED_INFO_FILES
  "/root/repo/build/src/nn/CMakeFiles/menos_nn.dir/DependInfo.cmake"
  "/root/repo/build/src/tensor/CMakeFiles/menos_tensor.dir/DependInfo.cmake"
  "/root/repo/build/src/gpusim/CMakeFiles/menos_gpusim.dir/DependInfo.cmake"
  "/root/repo/build/src/util/CMakeFiles/menos_util.dir/DependInfo.cmake"
  )

# Fortran module output directory.
set(CMAKE_Fortran_TARGET_MODULE_DIR "")
