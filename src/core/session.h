// Per-client serving session (Algorithm 1 + Fig 4's "serving processes").
//
// Each connected client gets one session running on its own thread. The
// session owns the client's model *structure* (built over the shared
// ParameterStore in Menos modes, or over a private copy in the vanilla
// baseline), the client's adapter + optimizer state, and drives the
// four-step loop of §2.2 under the memory policy of its ServingMode.
#pragma once

#include <atomic>
#include <chrono>
#include <functional>
#include <memory>
#include <thread>

#include "core/parameter_store.h"
#include "core/runtime.h"
#include "mem/offload_engine.h"
#include "net/transport.h"
#include "optim/optimizer.h"
#include "util/mutex.h"
#include "util/queue.h"
#include "util/stopwatch.h"
#include "util/thread_annotations.h"

namespace menos::core {

/// Cached profiling results shared across sessions with identical
/// fine-tuning configurations (the paper profiles each *configuration*
/// once; identical clients reuse the measurement).
class ProfileCache {
 public:
  std::optional<sched::ClientDemands> find(const std::string& key) const;
  void insert(const std::string& key, const sched::ClientDemands& demands);

 private:
  mutable util::Mutex mutex_;
  std::unordered_map<std::string, sched::ClientDemands> cache_
      MENOS_GUARDED_BY(mutex_);
};

/// Aggregate per-session timing, mirroring the paper's Table 1-3 breakdown
/// (as observed server-side).
struct SessionStats {
  util::RunningStat schedule_wait_s;  ///< request -> grant (Table 3)
  util::RunningStat compute_s;        ///< forward+backward compute (Table 2)
  std::uint64_t iterations = 0;
  std::uint64_t reforwards = 0;  ///< extra forward passes paid by on-demand
  std::uint64_t swaps = 0;       ///< vanilla task swaps (in+out pairs)
};

class ServingSession {
 public:
  /// Routes a ResumeSession received on a fresh connection to the parked
  /// session holding `token`; returns true once the connection has been
  /// handed over (set by the Server, which owns the session table).
  using ResumeRouter =
      std::function<bool(std::uint64_t token,
                         std::shared_ptr<net::Connection> connection)>;

  /// `offload` is non-null only under Policy::SwapOnIdle (shared modes):
  /// the session registers its A + O as a residency unit at handshake.
  /// `token` is the opaque session identity echoed in HelloAck; a
  /// reconnecting client presents it in ResumeSession (docs/FAULTS.md).
  ServingSession(int id, std::uint64_t token,
                 std::unique_ptr<net::Connection> connection,
                 const ServerConfig& config, const ParameterStore* store,
                 const nn::TransformerConfig& model,
                 sched::Scheduler& scheduler,
                 gpusim::DeviceManager& devices,
                 util::Mutex& profiling_mutex, ProfileCache& profile_cache,
                 mem::OffloadEngine* offload = nullptr);
  ~ServingSession();

  void start();        ///< spawn the session thread
  void join();         ///< wait for the serve loop to finish
  void request_stop(); ///< close the connection, unblocking receive()

  /// Must be set before start() for ResumeSession routing to work; without
  /// it a resume attempt is answered with Error.
  void set_resume_router(ResumeRouter router) {
    resume_router_ = std::move(router);
  }

  /// Hand a reconnecting client's fresh connection to this session. Closes
  /// the dead one, refreshes the lease, replies ResumeAck, and wakes the
  /// parked serve loop. False if the session cannot be resumed (leases off,
  /// already expired/stopped/finished).
  bool attach(std::shared_ptr<net::Connection> connection);

  /// Reaper hook: expire the session if its lease deadline passed — close
  /// the connection and wake any park/grant wait so the session thread runs
  /// cleanup() and releases every byte it holds.
  void expire_if_overdue();

  /// Scheduler grant arrived for this session.
  void on_grant(const sched::Grant& grant);

  int id() const noexcept { return id_; }
  std::uint64_t token() const noexcept { return token_; }
  bool lease_enabled() const noexcept { return config_.lease_seconds > 0.0; }
  bool finished() const noexcept { return finished_.load(); }

  /// Times a fresh connection was attached via ResumeSession.
  std::uint64_t resumes() const noexcept { return resumes_.load(); }

  /// Persistent GPU bytes attributable to this client: A + O in shared
  /// modes; the whole task copy in vanilla mode (0 while swapped out).
  std::size_t persistent_gpu_bytes() const;

  SessionStats stats() const;
  const sched::ClientDemands& demands() const noexcept { return demands_; }

 private:
  void run();
  void handshake(const net::Message& hello);
  void serve_loop();
  void handle_forward(const net::Message& msg);
  void handle_backward(const net::Message& msg);
  void cleanup();

  /// First frame was ResumeSession: hand our connection to the parked
  /// session owning `token` via the router, or answer Error and close.
  void route_resume(std::uint64_t token);

  /// Receive the next protocol message for the serve loop. Handles
  /// Heartbeat inline, refreshes the lease on every frame, and — when
  /// leases are enabled — parks across link loss until attach() delivers a
  /// fresh connection, the lease expires, or stop is requested. Returns
  /// nullopt when the session should wind down. Also snapshots the
  /// connection the message arrived on into serving_conn_ so replies go to
  /// that connection and never to one attached mid-computation.
  std::optional<net::Message> next_message();

  /// Send on the connection the current request arrived on; a false return
  /// means the link died mid-reply (the client will resume and resend).
  bool send_reply(const net::Message& message);

  void touch_lease_locked() MENOS_REQUIRES(conn_mutex_);
  void expire_locked() MENOS_REQUIRES(conn_mutex_);

  /// Profile M_f / M_b (§3.3) with random inputs on the real device.
  sched::ClientDemands profile();
  std::string profile_key() const;

  /// Scheduler interaction helpers.
  double acquire(sched::OpKind kind);  ///< request + block; returns wait s
  void release();

  /// Vanilla task-swap helpers (migrate params + optimizer state).
  void swap_to(gpusim::Device& device);

  /// Offload-engine helpers (no-ops unless a unit is registered). Busy
  /// nests; MenosPreserveAll never drops its last nesting level, so its
  /// unit — like its graph — stays pinned for the session's lifetime.
  void register_residency_unit();
  void offload_begin_use();
  void offload_end_use();
  void offload_ensure_resident();

  int id_;
  std::uint64_t token_;
  ResumeRouter resume_router_;
  // The live connection. Shared so the serve loop can hold a snapshot
  // across a blocking receive while attach()/request_stop()/the reaper
  // replace or close it; the CondVar wakes a parked serve loop when a
  // resumed connection lands (or the lease runs out).
  mutable util::Mutex conn_mutex_;
  util::CondVar conn_cv_;
  std::shared_ptr<net::Connection> connection_ MENOS_GUARDED_BY(conn_mutex_);
  std::chrono::steady_clock::time_point lease_deadline_
      MENOS_GUARDED_BY(conn_mutex_);
  bool expired_ MENOS_GUARDED_BY(conn_mutex_) = false;
  /// Session-thread-only: the connection the in-flight request arrived on.
  std::shared_ptr<net::Connection> serving_conn_;
  ServerConfig config_;
  const ParameterStore* store_;  // null in vanilla mode
  nn::TransformerConfig model_;
  sched::Scheduler* scheduler_;
  gpusim::DeviceManager* devices_;
  gpusim::Device* gpu_;   ///< entry device (first server block's GPU)
  gpusim::Device* host_;
  util::Mutex* profiling_mutex_;  // owned by the Server; serializes profiling
  ProfileCache* profile_cache_;
  mem::OffloadEngine* offload_;   // owned by the Server; null unless SwapOnIdle

  net::FinetuneConfig client_config_;
  std::unique_ptr<nn::ServerSection> section_;
  std::unique_ptr<optim::Optimizer> optimizer_;
  sched::ClientDemands demands_;
  std::size_t persistent_bytes_ = 0;  ///< A + O reserved on the scheduler
  std::size_t task_bytes_ = 0;        ///< vanilla: M_copy + A + O
  /// True once the A + O residency unit is registered with the offload
  /// engine (read by persistent_gpu_bytes from other threads).
  std::atomic<bool> unit_registered_{false};

  util::Notification grant_;
  std::atomic<bool> granted_{false};
  std::atomic<bool> stop_requested_{false};
  bool holding_allocation_ = false;
  bool on_gpu_ = true;

  // At-least-once delivery bookkeeping (docs/FAULTS.md): count of applied
  // backward steps, and — when leases are enabled — the last BackwardResult
  // so a resumed client resending a Backward whose reply was lost gets the
  // cached result instead of a double optimizer step.
  std::atomic<std::uint64_t> backwards_applied_{0};
  net::Message last_backward_reply_;  // session thread only
  std::atomic<std::uint64_t> resumes_{0};

  // Iteration state for modes that hold the graph across fwd -> bwd.
  tensor::Tensor held_input_;
  tensor::Tensor held_output_;
  // Cached activations x_c for the on-demand re-forward (host-side copy;
  // "we just need to cache the forward activations for the re-forward
  // computation, which is negligible" — §3.2).
  net::WireTensor cached_activation_;

  mutable util::Mutex stats_mutex_;
  SessionStats stats_ MENOS_GUARDED_BY(stats_mutex_);

  std::thread thread_;
  std::atomic<bool> finished_{false};
};

}  // namespace menos::core
