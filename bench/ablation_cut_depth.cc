// Ablation: the cut-depth privacy/efficiency trade-off of §3.1.
//
// "Clients concerned more about privacy cut the model at deeper layers,
// exposing less information to the server. Clients focused on efficiency
// cut earlier to utilize more server resources."
//
// We quantify both sides of that sentence. For every cut depth we train a
// linear probe that tries to reconstruct the client's input tokens from
// the intermediate activations x_c the server sees (an honest-but-curious
// server's cheapest attack), and report its top-1 accuracy alongside the
// efficiency costs the client pays for the deeper cut: parameters and
// compute kept on the client.
#include <cstdio>

#include "bench_common.h"
#include "data/dataset.h"
#include "nn/transformer.h"
#include "optim/optimizer.h"
#include "tensor/ops.h"

using namespace menos;

namespace {

struct ProbeResult {
  double accuracy = 0.0;       ///< token reconstruction from x_c
  double client_params = 0.0;  ///< fraction of model parameters client-side
};

nn::TransformerConfig probe_model() {
  nn::TransformerConfig model = nn::TransformerConfig::tiny_opt();
  model.dim = 32;
  model.n_heads = 2;
  model.ffn_hidden = 64;
  model.n_layers = 6;
  return model;
}

/// A randomly-initialized transformer barely mixes (the residual stream
/// carries the raw embedding through every depth), so the probe must run
/// against a PRE-TRAINED base — which is also the paper's actual setting.
/// Pre-train once, full-model, on the synthetic corpus; hand out the
/// frozen weights as a shared table keyed like a checkpoint.
const std::unordered_map<std::string, tensor::Tensor>& pretrained_table(
    gpusim::Device& host) {
  static std::unordered_map<std::string, tensor::Tensor> table = [&] {
    const nn::TransformerConfig model = probe_model();
    nn::FreshInit init(42);
    nn::AdapterSpec none;
    none.type = nn::AdapterType::None;
    nn::SplitSpec split;
    static nn::LocalModel full(model, split, none, init, host, 1);
    std::vector<nn::Parameter> params = full.parameters();
    for (nn::Parameter& p : params) p.value.set_requires_grad(true);
    auto opt = optim::make_optimizer(optim::OptimizerKind::Adam, params,
                                     3e-3f);
    data::CharTokenizer tok;
    auto tokens = tok.encode(data::make_shakespeare_like(8000, 7).text);
    data::DataLoader loader(tokens, 4, 16, 21);
    for (int step = 0; step < 250; ++step) {
      const data::Batch b = loader.next();
      tensor::Tensor loss = full.loss(b.inputs, b.targets, 4, 16);
      tensor::backward(loss);
      opt->step();
      opt->zero_grad();
    }
    std::unordered_map<std::string, tensor::Tensor> out;
    for (nn::Parameter& p : params) {
      p.value.set_requires_grad(false);
      out.emplace(p.name, p.value);
    }
    return out;
  }();
  return table;
}

ProbeResult probe_cut(int front_blocks) {
  const nn::TransformerConfig model = probe_model();
  auto host = gpusim::make_host_device();
  static auto shared_host = gpusim::make_host_device();
  nn::SharedSource source(&pretrained_table(*shared_host));
  nn::AdapterSpec none;
  none.type = nn::AdapterType::None;
  nn::SplitSpec split;
  split.front_blocks = front_blocks;
  util::Rng arng(1);
  nn::InputSection f_i(model, split, none, source, *host, arng);
  util::Rng srv_rng(2);
  nn::ServerSection f_s(model, split, none, source, *host, srv_rng);
  util::Rng out_rng(3);
  nn::OutputSection f_o(model, split, none, source, *host, out_rng);

  data::CharTokenizer tok;
  auto tokens = tok.encode(data::make_shakespeare_like(8000, 7).text);
  data::DataLoader loader(tokens, 4, 16, 9);

  // Linear probe: token id from the activation at that position.
  tensor::Tensor w = tensor::Tensor::empty({model.dim, model.vocab_size},
                                           *host);
  util::Rng wrng(11);
  wrng.fill_normal(w.data(), static_cast<std::size_t>(w.numel()), 0.05f);
  w.set_requires_grad(true);
  tensor::Tensor bias = tensor::Tensor::zeros({model.vocab_size}, *host);
  bias.set_requires_grad(true);
  auto probe_opt = optim::make_optimizer(
      optim::OptimizerKind::Adam,
      {nn::Parameter{"w", w}, nn::Parameter{"b", bias}}, 0.02f);

  const auto activations_of = [&](const data::Batch& batch) {
    tensor::NoGradGuard no_grad;
    return f_i.forward(batch.inputs, batch.batch_size, batch.seq_len);
  };

  for (int step = 0; step < 150; ++step) {
    const data::Batch batch = loader.next();
    tensor::Tensor x_c = activations_of(batch);
    tensor::Tensor flat = tensor::reshape(
        x_c.detach(), {batch.batch_size * batch.seq_len, model.dim});
    tensor::Tensor logits =
        tensor::add_bias(tensor::matmul(flat, w), bias);
    tensor::Tensor loss = tensor::cross_entropy(logits, batch.inputs);
    tensor::backward(loss);
    probe_opt->step();
    probe_opt->zero_grad();
  }

  // Held-out accuracy.
  data::DataLoader eval_loader(tokens, 4, 16, 999);
  int correct = 0, total = 0;
  for (int trial = 0; trial < 8; ++trial) {
    const data::Batch batch = eval_loader.next();
    tensor::NoGradGuard no_grad;
    tensor::Tensor x_c = activations_of(batch);
    tensor::Tensor flat = tensor::reshape(
        x_c, {batch.batch_size * batch.seq_len, model.dim});
    const auto predictions = tensor::argmax_lastdim(
        tensor::add_bias(tensor::matmul(flat, w), bias));
    for (std::size_t i = 0; i < predictions.size(); ++i) {
      if (predictions[i] == batch.inputs[i]) ++correct;
      ++total;
    }
  }

  ProbeResult result;
  result.accuracy = static_cast<double>(correct) / total;
  const double client_bytes = static_cast<double>(
      f_i.parameter_bytes() + f_o.parameter_bytes());
  const double total_bytes =
      client_bytes + static_cast<double>(f_s.parameter_bytes());
  result.client_params = client_bytes / total_bytes;
  return result;
}

}  // namespace

int main() {
  bench::print_header(
      "Ablation — cut depth: privacy vs efficiency (§3.1)",
      "deeper client-side cuts expose less reconstructable information to "
      "the server but keep more parameters/compute on the client");
  std::printf("%-10s  %-24s  %-22s\n", "cut depth",
              "probe reconstruction acc", "client param share");
  for (int cut = 1; cut <= 5; ++cut) {
    const ProbeResult r = probe_cut(cut);
    std::printf("%-10d  %21.1f%%   %19.1f%%\n", cut, 100.0 * r.accuracy,
                100.0 * r.client_params);
  }
  std::printf(
      "\nReading: the efficiency side of §3.1's trade-off is mechanical — "
      "each extra client-side block raises the client's parameter (and "
      "compute) share linearly. The privacy side is more sobering: in this "
      "small pre-LN transformer the residual stream keeps current-token "
      "identity linearly recoverable at EVERY depth (~96-97%% probe "
      "accuracy), echoing the split-learning leakage results the paper "
      "cites [39] — cut depth alone is weak protection, which strengthens "
      "the case for serving heterogeneous, client-chosen cut points (and "
      "complementary defenses) over one shared base.\n");
  return 0;
}
