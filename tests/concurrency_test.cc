// Event-driven serving core under load (docs/ARCHITECTURE.md): many
// concurrent in-proc clients multiplexed onto a small shared executor must
// produce exactly the training trajectories of an unloaded server, leave
// the scheduler balanced, and return every byte of GPU memory.
#include <gtest/gtest.h>

#include <cstdlib>
#include <memory>
#include <string>
#include <thread>
#include <vector>

#include "core/client.h"
#include "core/executor.h"
#include "core/server.h"
#include "data/dataset.h"
#include "net/transport.h"

namespace menos::core {
namespace {

nn::TransformerConfig cc_model() {
  nn::TransformerConfig c = nn::TransformerConfig::tiny_opt();
  c.dim = 32;
  c.n_heads = 2;
  c.ffn_hidden = 64;
  c.n_layers = 3;
  return c;
}

struct Rig {
  explicit Rig(ServingMode mode, std::size_t gpu_bytes = 256u << 20)
      : devices(1, gpu_bytes) {
    config.mode = mode;
    config.base_seed = 42;
    // Pin the executor width so the test exercises real multiplexing (many
    // sessions per worker) — unless CI already forces a width through the
    // environment (the TSan leg runs with MENOS_EXECUTOR_THREADS=2).
    config.executor_threads =
        std::getenv("MENOS_EXECUTOR_THREADS") != nullptr ? 0 : 4;
    server = std::make_unique<Server>(config, devices, cc_model());
    server->start(acceptor);
  }
  ~Rig() {
    if (server != nullptr) server->stop();
  }

  std::unique_ptr<Client> client(std::uint64_t seed) {
    ClientOptions options;
    options.finetune.model = cc_model();
    options.finetune.batch_size = 2;
    options.finetune.seq_len = 8;
    options.finetune.adapter_seed = seed;
    options.base_seed = 42;
    auto c = std::make_unique<Client>(options, acceptor.connect(),
                                      client_devices.gpu(0));
    c->connect();
    return c;
  }

  gpusim::DeviceManager devices;
  gpusim::DeviceManager client_devices{1, 1u << 30};
  ServerConfig config;
  net::InprocAcceptor acceptor;
  std::unique_ptr<Server> server;
};

data::DataLoader cc_loader(std::uint64_t seed) {
  data::CharTokenizer tok;
  return data::DataLoader(
      tok.encode(data::make_shakespeare_like(2000, 3).text), 2, 8, seed);
}

constexpr int kClients = 128;
constexpr int kSteps = 2;
constexpr int kDriverThreads = 8;

/// Each client's loss trajectory is a pure function of its adapter seed and
/// data seed — scheduling order must never leak into the math.
using LossCurves = std::vector<std::vector<double>>;

}  // namespace

TEST(Concurrency, ManyClientsMatchUnloadedLossCurvesExactly) {
  // Reference: the same 128 fine-tuning jobs, one client connected at a
  // time against a fresh server (zero scheduler contention).
  LossCurves reference(kClients);
  {
    Rig rig(ServingMode::MenosOnDemand);
    for (int c = 0; c < kClients; ++c) {
      auto client = rig.client(1000 + static_cast<std::uint64_t>(c));
      auto loader = cc_loader(static_cast<std::uint64_t>(c));
      for (int s = 0; s < kSteps; ++s) {
        reference[static_cast<std::size_t>(c)].push_back(
            client->train_step(loader.next()).loss);
      }
      client->disconnect();
    }
  }

  // Load: all 128 sessions live at once, steps interleaved by 8 driver
  // threads, the server side multiplexed onto a 4-worker executor (the
  // session count exceeds the worker count 32x).
  LossCurves loaded(kClients);
  Rig rig(ServingMode::MenosOnDemand);
  ASSERT_LE(rig.server->executor().width(), 8);
  std::vector<std::unique_ptr<Client>> clients;
  clients.reserve(kClients);
  for (int c = 0; c < kClients; ++c) {
    clients.push_back(rig.client(1000 + static_cast<std::uint64_t>(c)));
  }
  EXPECT_EQ(rig.server->session_count(), kClients);

  std::vector<std::thread> drivers;
  drivers.reserve(kDriverThreads);
  for (int t = 0; t < kDriverThreads; ++t) {
    drivers.emplace_back([&, t] {
      for (int c = t; c < kClients; c += kDriverThreads) {
        auto loader = cc_loader(static_cast<std::uint64_t>(c));
        for (int s = 0; s < kSteps; ++s) {
          loaded[static_cast<std::size_t>(c)].push_back(
              clients[static_cast<std::size_t>(c)]->train_step(loader.next())
                  .loss);
        }
      }
    });
  }
  for (auto& d : drivers) d.join();

  // Bit-identical, not approximately equal: the refactor from
  // thread-per-session to state machines must not perturb a single ULP.
  for (int c = 0; c < kClients; ++c) {
    ASSERT_EQ(loaded[static_cast<std::size_t>(c)].size(),
              reference[static_cast<std::size_t>(c)].size());
    for (int s = 0; s < kSteps; ++s) {
      EXPECT_EQ(loaded[static_cast<std::size_t>(c)][static_cast<std::size_t>(s)],
                reference[static_cast<std::size_t>(c)]
                         [static_cast<std::size_t>(s)])
          << "client " << c << " step " << s;
    }
  }

  // Scheduler ledger: every request granted (forward + backward per step),
  // nothing left waiting, and FCFS/backfill counters internally sane.
  const sched::SchedulerStats stats = rig.server->scheduler().stats();
  EXPECT_EQ(stats.requests,
            static_cast<std::uint64_t>(kClients) * kSteps * 2);
  EXPECT_EQ(stats.grants, stats.requests);
  EXPECT_LE(stats.backfill_grants, stats.grants);
  EXPECT_EQ(rig.server->scheduler().waiting_count(), 0u);

  for (auto& client : clients) client->disconnect();
  clients.clear();  // client-side halves release their device memory
  rig.server->stop();
  EXPECT_EQ(rig.server->session_count(), 0);

  // Teardown accounting: destroying the server must return every GPU byte
  // (base model included) to the metered device.
  rig.server.reset();
  EXPECT_EQ(rig.devices.gpu(0).allocated(), 0u);
  EXPECT_EQ(rig.client_devices.gpu(0).allocated(), 0u);
}

TEST(Concurrency, ExecutorWidthResolution) {
  const char* saved = std::getenv("MENOS_EXECUTOR_THREADS");
  const std::string saved_value = saved != nullptr ? saved : "";
  ::unsetenv("MENOS_EXECUTOR_THREADS");

  // Explicit configuration wins; <= 0 falls back to the environment, then
  // to min(8, hardware_concurrency).
  EXPECT_EQ(Executor::resolve_width(3), 3);
  const int ambient = Executor::resolve_width(0);
  EXPECT_GE(ambient, 1);
  EXPECT_LE(ambient, 8);
  ::setenv("MENOS_EXECUTOR_THREADS", "5", 1);
  EXPECT_EQ(Executor::resolve_width(0), 5);
  EXPECT_EQ(Executor::resolve_width(2), 2);

  if (saved != nullptr) {
    ::setenv("MENOS_EXECUTOR_THREADS", saved_value.c_str(), 1);
  } else {
    ::unsetenv("MENOS_EXECUTOR_THREADS");
  }
}

}  // namespace menos::core
