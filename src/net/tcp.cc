#include <arpa/inet.h>
#include <netinet/in.h>
#include <netinet/tcp.h>
#include <sys/socket.h>
#include <unistd.h>

#include <atomic>
#include <cerrno>
#include <cstring>

#include "net/transport.h"
#include "util/logging.h"
#include "util/mutex.h"

namespace menos::net {
namespace {

/// Write the whole buffer; false on peer reset.
bool write_all(int fd, const std::uint8_t* data, std::size_t size) {
  std::size_t sent = 0;
  while (sent < size) {
    const ssize_t n = ::send(fd, data + sent, size - sent, MSG_NOSIGNAL);
    if (n < 0) {
      if (errno == EINTR) continue;
      return false;
    }
    sent += static_cast<std::size_t>(n);
  }
  return true;
}

/// Read exactly `size` bytes; false on orderly close or reset.
bool read_all(int fd, std::uint8_t* data, std::size_t size) {
  std::size_t got = 0;
  while (got < size) {
    const ssize_t n = ::recv(fd, data + got, size - got, 0);
    if (n == 0) return false;
    if (n < 0) {
      if (errno == EINTR) continue;
      return false;
    }
    got += static_cast<std::size_t>(n);
  }
  return true;
}

class TcpConnection final : public Connection {
 public:
  explicit TcpConnection(int fd) : fd_(fd) {
    const int one = 1;
    ::setsockopt(fd_, IPPROTO_TCP, TCP_NODELAY, &one, sizeof(one));
  }

  ~TcpConnection() override { close(); }

  bool send(const Message& message) override {
    const std::vector<std::uint8_t> frame = frame_message(message);
    util::MutexLock lock(send_mutex_);
    if (fd_ < 0) return false;
    if (!write_all(fd_, frame.data(), frame.size())) return false;
    bytes_sent_ += frame.size();
    return true;
  }

  std::optional<Message> receive() override {
    std::uint8_t header[kFrameHeaderBytes];
    if (fd_ < 0 || !read_all(fd_, header, sizeof(header))) return std::nullopt;
    std::uint32_t magic = 0;
    std::uint64_t payload_len = 0;
    std::memcpy(&magic, header, 4);
    std::memcpy(&payload_len, header + 4, 8);
    if (magic != kFrameMagic) throw ProtocolError("bad frame magic on TCP");
    if (payload_len > kMaxFramePayload) {
      throw ProtocolError("oversized TCP frame");
    }
    std::vector<std::uint8_t> rest(
        sizeof(header) + static_cast<std::size_t>(payload_len) +
        kFrameTrailerBytes);
    std::memcpy(rest.data(), header, sizeof(header));
    if (!read_all(fd_, rest.data() + sizeof(header),
                  rest.size() - sizeof(header))) {
      return std::nullopt;  // peer vanished mid-frame
    }
    return parse_frame(rest.data(), rest.size());
  }

  void close() override {
    const int fd = fd_.exchange(-1);
    if (fd >= 0) {
      ::shutdown(fd, SHUT_RDWR);
      ::close(fd);
    }
  }

  std::uint64_t bytes_sent() const override { return bytes_sent_; }

 private:
  std::atomic<int> fd_;
  // Serializes whole-frame writes on the socket so concurrent senders
  // cannot interleave partial frames; fd_ itself is atomic, so there is no
  // guarded data member.
  // NOLINTNEXTLINE(mutex-annotation)
  util::Mutex send_mutex_;
  std::atomic<std::uint64_t> bytes_sent_{0};
};

class TcpListenerImpl final : public TcpListener {
 public:
  TcpListenerImpl(int fd, int port) : fd_(fd), port_(port) {}
  ~TcpListenerImpl() override { close(); }

  std::unique_ptr<Connection> accept() override {
    const int fd = fd_.load();
    if (fd < 0) return nullptr;
    const int client = ::accept(fd, nullptr, nullptr);
    if (client < 0) return nullptr;
    return std::make_unique<TcpConnection>(client);
  }

  void close() override {
    const int fd = fd_.exchange(-1);
    if (fd >= 0) {
      ::shutdown(fd, SHUT_RDWR);
      ::close(fd);
    }
  }

  int port() const override { return port_; }

 private:
  std::atomic<int> fd_;
  int port_;
};

}  // namespace

std::unique_ptr<TcpListener> tcp_listen(int port) {
  const int fd = ::socket(AF_INET, SOCK_STREAM, 0);
  if (fd < 0) return nullptr;
  const int one = 1;
  ::setsockopt(fd, SOL_SOCKET, SO_REUSEADDR, &one, sizeof(one));
  sockaddr_in addr{};
  addr.sin_family = AF_INET;
  addr.sin_addr.s_addr = htonl(INADDR_LOOPBACK);
  addr.sin_port = htons(static_cast<std::uint16_t>(port));
  if (::bind(fd, reinterpret_cast<sockaddr*>(&addr), sizeof(addr)) != 0 ||
      ::listen(fd, 64) != 0) {
    ::close(fd);
    return nullptr;
  }
  socklen_t len = sizeof(addr);
  if (::getsockname(fd, reinterpret_cast<sockaddr*>(&addr), &len) != 0) {
    ::close(fd);
    return nullptr;
  }
  return std::make_unique<TcpListenerImpl>(fd, ntohs(addr.sin_port));
}

std::unique_ptr<Connection> tcp_connect(const std::string& host, int port) {
  const int fd = ::socket(AF_INET, SOCK_STREAM, 0);
  if (fd < 0) return nullptr;
  sockaddr_in addr{};
  addr.sin_family = AF_INET;
  addr.sin_port = htons(static_cast<std::uint16_t>(port));
  if (::inet_pton(AF_INET, host.c_str(), &addr.sin_addr) != 1) {
    ::close(fd);
    return nullptr;
  }
  if (::connect(fd, reinterpret_cast<sockaddr*>(&addr), sizeof(addr)) != 0) {
    ::close(fd);
    return nullptr;
  }
  return std::make_unique<TcpConnection>(fd);
}

}  // namespace menos::net
