// Lightweight event tracing for runtime observability.
//
// A fixed-capacity, thread-safe ring of timestamped events. The Menos
// server records session lifecycle, scheduling waits, compute phases and
// swaps into one of these when ServerConfig::trace is set; tests assert on
// event sequences and operators can dump JSONL for offline analysis.
// Recording is wait-free in the common case (one mutex, no allocation
// after construction beyond the event name).
#pragma once

#include <chrono>
#include <cstdint>
#include <string>
#include <vector>

#include "util/mutex.h"
#include "util/thread_annotations.h"

namespace menos::util {

enum class TraceCategory : std::uint8_t {
  Session,    ///< connect / handshake / disconnect
  Scheduler,  ///< request / grant / release waits
  Memory,     ///< allocations, swaps, profiling results
  Network,    ///< message-level events
};

const char* trace_category_name(TraceCategory category) noexcept;

struct TraceEvent {
  double t = 0.0;  ///< seconds since the trace was constructed
  TraceCategory category = TraceCategory::Session;
  std::string name;
  int client_id = -1;
  std::uint64_t value = 0;  ///< bytes, microseconds, counts — event-defined
};

class EventTrace {
 public:
  explicit EventTrace(std::size_t capacity = 8192);

  /// Append an event (overwrites the oldest once full).
  void record(TraceCategory category, std::string name, int client_id = -1,
              std::uint64_t value = 0);

  /// Events in arrival order (oldest first).
  std::vector<TraceEvent> snapshot() const;

  /// Number of events evicted by ring overflow.
  std::uint64_t dropped() const;

  /// Total events ever recorded.
  std::uint64_t recorded() const;

  void clear();

  /// One JSON object per line: {"t":..., "cat":"...", "name":"...",
  /// "client":..., "value":...}.
  std::string to_jsonl() const;

 private:
  mutable Mutex mutex_{"util.trace", 90};
  std::vector<TraceEvent> ring_ MENOS_GUARDED_BY(mutex_);
  std::size_t capacity_;  // immutable after construction
  std::size_t next_ MENOS_GUARDED_BY(mutex_) = 0;
  std::uint64_t total_ MENOS_GUARDED_BY(mutex_) = 0;
  std::chrono::steady_clock::time_point start_;
};

}  // namespace menos::util
