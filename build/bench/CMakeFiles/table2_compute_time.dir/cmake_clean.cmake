file(REMOVE_RECURSE
  "CMakeFiles/table2_compute_time.dir/table2_compute_time.cc.o"
  "CMakeFiles/table2_compute_time.dir/table2_compute_time.cc.o.d"
  "table2_compute_time"
  "table2_compute_time.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/table2_compute_time.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
