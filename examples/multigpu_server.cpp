// Multi-GPU server: a base model too large for any single (simulated) GPU
// is layer-split across four of them; CPU-only clients fine-tune against
// it concurrently — the Fig 10 setting of the paper, on the real runtime.
#include <cstdio>
#include <thread>
#include <vector>

#include "core/client.h"
#include "core/server.h"
#include "net/transport.h"
#include "util/bytes.h"
#include "util/trace.h"

using namespace menos;

int main() {
  // A parameter-heavy model so the base dominates GPU memory.
  nn::TransformerConfig model = nn::TransformerConfig::tiny_opt();
  model.dim = 64;
  model.n_heads = 4;
  model.ffn_hidden = 512;
  model.n_layers = 8;

  // Size each GPU to hold only ~75% of the base: one GPU cannot serve this
  // model, four together can (with headroom for activations).
  const std::size_t base_bytes = [&] {
    auto probe = gpusim::make_host_device();
    core::ParameterStore store(model, *probe, 42);
    return store.bytes();
  }();
  const std::size_t per_gpu = base_bytes * 3 / 4;
  std::printf("base model: %s; per-GPU capacity: %s\n",
              util::format_bytes(base_bytes).c_str(),
              util::format_bytes(per_gpu).c_str());

  try {
    gpusim::DeviceManager one(1, per_gpu);
    core::ServerConfig config;
    config.base_seed = 42;
    core::Server impossible(config, one, model);
    std::printf("unexpected: single GPU held the model\n");
  } catch (const OutOfMemory& e) {
    std::printf("1 GPU:  cannot load the base model (%s)\n", e.what());
  }

  util::EventTrace trace(4096);
  gpusim::DeviceManager four(4, per_gpu);
  core::ServerConfig config;
  config.base_seed = 42;
  config.trace = &trace;
  core::Server server(config, four, model);
  for (int g = 0; g < 4; ++g) {
    std::printf("4 GPUs: gpu%d holds %s of base layers\n", g,
                util::format_bytes(four.gpu(g).allocated()).c_str());
  }

  net::InprocAcceptor acceptor;
  server.start(acceptor);

  std::vector<std::thread> clients;
  for (int i = 0; i < 3; ++i) {
    clients.emplace_back([&, i] {
      // CPU-only client: its sections live on the host device — fine,
      // because the heavy layers are all on the server (Fig 10's point).
      gpusim::DeviceManager cpu_only(0, 1);
      core::ClientOptions options;
      options.finetune.client_name = "cpu" + std::to_string(i);
      options.finetune.model = model;
      options.finetune.batch_size = 1;
      options.finetune.seq_len = 8;
      options.finetune.lr = 5e-3f;
      options.finetune.adapter_seed = 300 + static_cast<std::uint64_t>(i);
      options.base_seed = 42;
      options.schedule = optim::LrSchedule::warmup_cosine(2, 12);
      core::Client client(options, acceptor.connect(), cpu_only.host());
      try {
        client.connect();
      } catch (const menos::Error& e) {
        std::printf("client cpu%d rejected: %s\n", i, e.what());
        return;
      }
      data::CharTokenizer tok;
      data::DataLoader loader(
          tok.encode(data::make_wikitext_like(3000,
                                              400 + static_cast<std::uint64_t>(i))
                         .text),
          1, 8, static_cast<std::uint64_t>(i));
      double loss = 0.0;
      for (int s = 0; s < 6; ++s) loss = client.train_step(loader.next()).loss;
      std::printf("client cpu%d finished: loss %.4f\n", i, loss);
      client.disconnect();
    });
  }
  for (auto& c : clients) c.join();

  int swaps = 0, handshakes = 0;
  for (const auto& e : trace.snapshot()) {
    if (e.name == "swap.in" || e.name == "swap.out") ++swaps;
    if (e.name == "handshake") ++handshakes;
  }
  std::printf(
      "\ntrace: %llu events (%d handshakes, %d swaps); activations crossed "
      "GPU boundaries inside every forward/backward.\n",
      static_cast<unsigned long long>(trace.recorded()), handshakes, swaps);
  server.stop();
  return 0;
}
