#include <gtest/gtest.h>

#include <atomic>
#include <thread>
#include <vector>

#include "gpusim/device.h"
#include "test_helpers.h"
#include "util/check.h"

namespace menos::gpusim {
namespace {

// DeviceTest (tests/test_helpers.h) verifies at TearDown that every device
// created through the fixture ends the test with allocated() == 0.
using SimGpuTest = menos::testing::DeviceTest;
using HostDeviceTest = menos::testing::DeviceTest;

TEST_F(SimGpuTest, BasicAccounting) {
  Device& gpu = make_gpu("g0", 1000);
  EXPECT_EQ(gpu.kind(), DeviceKind::SimGpu);
  void* a = gpu.allocate(400);
  EXPECT_EQ(gpu.allocated(), 400u);
  EXPECT_EQ(gpu.available(), 600u);
  void* b = gpu.allocate(600);
  EXPECT_EQ(gpu.available(), 0u);
  gpu.deallocate(a, 400);
  EXPECT_EQ(gpu.allocated(), 600u);
  gpu.deallocate(b, 600);
  EXPECT_EQ(gpu.allocated(), 0u);
}

TEST_F(SimGpuTest, LargestFreeBlockAndFragmentation) {
  Device& gpu = make_gpu("g0", 1000);
  // A plain metered device has no fragmentation model: every free byte is
  // one contiguous grant away.
  EXPECT_EQ(gpu.stats().largest_free_block, 1000u);
  EXPECT_EQ(gpu.stats().fragmentation(), 0.0);
  EXPECT_EQ(gpu.stats().cached, 0u);
  void* a = gpu.allocate(400);
  EXPECT_EQ(gpu.stats().largest_free_block, 600u);
  EXPECT_EQ(gpu.stats().fragmentation(), 0.0);
  gpu.empty_cache();  // no pooling layer: must be a harmless no-op
  EXPECT_EQ(gpu.allocated(), 400u);
  gpu.deallocate(a, 400);
}

TEST_F(HostDeviceTest, UnlimitedDeviceHasNoFragmentationNotion) {
  Device& host = make_host("h");
  void* a = host.allocate(4096);
  const MemoryStats s = host.stats();
  EXPECT_EQ(s.capacity, 0u);
  EXPECT_EQ(s.largest_free_block, 0u);
  EXPECT_EQ(s.fragmentation(), 0.0);
  host.deallocate(a, 4096);
}

TEST_F(SimGpuTest, OomThrowsWithShortfall) {
  Device& gpu = make_gpu("g0", 100);
  void* a = gpu.allocate(60);
  try {
    gpu.allocate(50);
    FAIL() << "expected OutOfMemory";
  } catch (const OutOfMemory& e) {
    EXPECT_EQ(e.requested(), 50u);
    EXPECT_EQ(e.available(), 40u);
  }
  // Failed allocation leaves accounting untouched.
  EXPECT_EQ(gpu.allocated(), 60u);
  gpu.deallocate(a, 60);
}

TEST_F(SimGpuTest, PeakTracking) {
  Device& gpu = make_gpu("g0", 1000);
  void* a = gpu.allocate(300);
  void* b = gpu.allocate(400);
  gpu.deallocate(b, 400);
  EXPECT_EQ(gpu.stats().peak, 700u);
  gpu.reset_peak();
  EXPECT_EQ(gpu.stats().peak, 300u);
  void* c = gpu.allocate(100);
  EXPECT_EQ(gpu.stats().peak, 400u);
  gpu.deallocate(a, 300);
  gpu.deallocate(c, 100);
}

TEST_F(SimGpuTest, LifetimeCounters) {
  Device& gpu = make_gpu("g0", 1000);
  void* a = gpu.allocate(10);
  void* b = gpu.allocate(20);
  gpu.deallocate(a, 10);
  gpu.deallocate(b, 20);
  const MemoryStats s = gpu.stats();
  EXPECT_EQ(s.lifetime_allocs, 2u);
  EXPECT_EQ(s.lifetime_frees, 2u);
  EXPECT_EQ(s.lifetime_bytes, 30u);
}

TEST_F(SimGpuTest, ZeroByteAllocationsAreDistinct) {
  Device& gpu = make_gpu("g0", 100);
  void* a = gpu.allocate(0);
  void* b = gpu.allocate(0);
  EXPECT_NE(a, nullptr);
  EXPECT_NE(a, b);
  gpu.deallocate(a, 0);
  gpu.deallocate(b, 0);
  EXPECT_EQ(gpu.allocated(), 0u);
}

TEST_F(SimGpuTest, ConcurrentAllocationNeverExceedsCapacity) {
  Device& gpu = make_gpu("g0", 8000);
  std::atomic<bool> violated{false};
  std::vector<std::thread> threads;
  for (int t = 0; t < 8; ++t) {
    threads.emplace_back([&] {
      for (int i = 0; i < 200; ++i) {
        try {
          void* p = gpu.allocate(100);
          if (gpu.allocated() > 8000) violated.store(true);
          gpu.deallocate(p, 100);
        } catch (const OutOfMemory&) {
          // capacity pressure is expected; over-allocation is not
        }
      }
    });
  }
  for (auto& th : threads) th.join();
  EXPECT_FALSE(violated.load());
  EXPECT_EQ(gpu.allocated(), 0u);
}

TEST_F(HostDeviceTest, Unlimited) {
  Device& host = make_host();
  EXPECT_EQ(host.kind(), DeviceKind::Host);
  void* p = host.allocate(1 << 20);
  EXPECT_EQ(host.allocated(), 1u << 20);
  EXPECT_EQ(host.stats().capacity, 0u);
  host.deallocate(p, 1 << 20);
}

TEST(TransferModel, CostFormula) {
  TransferModel m;
  m.bandwidth_bytes_per_s = 1e9;
  m.latency_s = 1e-3;
  EXPECT_NEAR(m.seconds_for(1'000'000'000), 1.001, 1e-9);
  EXPECT_NEAR(m.seconds_for(0), 1e-3, 1e-12);
}

TEST(DeviceManager, GpusAndHost) {
  DeviceManager dm(3, 1000);
  EXPECT_EQ(dm.gpu_count(), 3);
  EXPECT_EQ(dm.total_gpu_capacity(), 3000u);
  EXPECT_EQ(dm.total_gpu_available(), 3000u);
  void* p = dm.gpu(1).allocate(600);
  EXPECT_EQ(dm.total_gpu_available(), 2400u);
  EXPECT_EQ(&dm.least_loaded_gpu(), &dm.gpu(0));
  void* q = dm.gpu(0).allocate(900);
  void* r = dm.gpu(2).allocate(100);
  EXPECT_EQ(&dm.least_loaded_gpu(), &dm.gpu(2));
  dm.gpu(1).deallocate(p, 600);
  dm.gpu(0).deallocate(q, 900);
  dm.gpu(2).deallocate(r, 100);
  EXPECT_THROW(dm.gpu(3), InvalidArgument);
  EXPECT_THROW(dm.gpu(-1), InvalidArgument);
}

TEST(DeviceManager, ZeroGpusAllowedButNoLeastLoaded) {
  DeviceManager dm(0, 1000);
  EXPECT_EQ(dm.gpu_count(), 0);
  EXPECT_THROW(dm.least_loaded_gpu(), InvalidArgument);
}

TEST(SimGpu, RejectsZeroCapacity) {
  EXPECT_THROW(make_sim_gpu("bad", 0), InvalidArgument);
}

}  // namespace
}  // namespace menos::gpusim
