// Concurrency primitives shared by the runtime's server/client threads.
//
// All three classes use the annotated util::Mutex/CondVar wrappers so
// Clang's -Wthread-safety analysis verifies their locking discipline (see
// docs/ANALYSIS.md). Waits are written as explicit while-loops: the
// guarded reads in the predicate must sit in a function that the analysis
// can see holds the lock.
#pragma once

#include <chrono>
#include <deque>
#include <optional>
#include <utility>

#include "util/mutex.h"
#include "util/thread_annotations.h"

namespace menos::util {

/// Unbounded MPMC blocking queue. close() wakes all waiters; pop() returns
/// nullopt once the queue is closed and drained, which is the shutdown
/// signal consumers should honour.
template <typename T>
class BlockingQueue {
 public:
  BlockingQueue() = default;
  BlockingQueue(const BlockingQueue&) = delete;
  BlockingQueue& operator=(const BlockingQueue&) = delete;

  /// Enqueue an item. Throws nothing; pushing to a closed queue drops the
  /// item and returns false so producers can tell delivery from loss (the
  /// inproc transport's byte accounting depends on this), while shutdown
  /// races stay benign for producers that ignore the result.
  bool push(T item) {
    {
      MutexLock lock(mutex_);
      if (closed_) return false;
      items_.push_back(std::move(item));
    }
    cv_.notify_one();
    return true;
  }

  /// Block until an item is available or the queue is closed and empty.
  std::optional<T> pop() {
    MutexLock lock(mutex_);
    while (items_.empty() && !closed_) cv_.wait(mutex_);
    if (items_.empty()) return std::nullopt;
    T item = std::move(items_.front());
    items_.pop_front();
    return item;
  }

  /// Like pop(), but gives up after `seconds`. Returns nullopt on timeout
  /// as well as on close-and-drained; callers that need to distinguish the
  /// two can check closed(). Used by connection receive timeouts.
  std::optional<T> pop_for(double seconds) {
    MutexLock lock(mutex_);
    const auto deadline = std::chrono::steady_clock::now() +
                          std::chrono::duration<double>(seconds);
    while (items_.empty() && !closed_) {
      const auto now = std::chrono::steady_clock::now();
      if (now >= deadline) return std::nullopt;
      cv_.wait_for(mutex_,
                   std::chrono::duration<double>(deadline - now).count());
    }
    if (items_.empty()) return std::nullopt;
    T item = std::move(items_.front());
    items_.pop_front();
    return item;
  }

  /// Non-blocking pop.
  std::optional<T> try_pop() {
    MutexLock lock(mutex_);
    if (items_.empty()) return std::nullopt;
    T item = std::move(items_.front());
    items_.pop_front();
    return item;
  }

  /// Close the queue: subsequent push() calls drop, waiters drain then get
  /// nullopt.
  void close() {
    {
      MutexLock lock(mutex_);
      closed_ = true;
    }
    cv_.notify_all();
  }

  bool closed() const {
    MutexLock lock(mutex_);
    return closed_;
  }

  std::size_t size() const {
    MutexLock lock(mutex_);
    return items_.size();
  }

 private:
  mutable Mutex mutex_{"util.queue", 80};
  CondVar cv_;
  std::deque<T> items_ MENOS_GUARDED_BY(mutex_);
  bool closed_ MENOS_GUARDED_BY(mutex_) = false;
};

/// One-shot or resettable binary event ("manual-reset event" semantics).
class Notification {
 public:
  void notify() {
    {
      MutexLock lock(mutex_);
      notified_ = true;
    }
    cv_.notify_all();
  }

  void wait() {
    MutexLock lock(mutex_);
    while (!notified_) cv_.wait(mutex_);
  }

  /// Wait and atomically reset; used by serving sessions that are signalled
  /// once per scheduling grant.
  void wait_and_reset() {
    MutexLock lock(mutex_);
    while (!notified_) cv_.wait(mutex_);
    notified_ = false;
  }

  bool notified() const {
    MutexLock lock(mutex_);
    return notified_;
  }

 private:
  mutable Mutex mutex_{"util.notification", 82};
  CondVar cv_;
  bool notified_ MENOS_GUARDED_BY(mutex_) = false;
};

/// Go-style wait group for joining a dynamic set of worker threads.
class WaitGroup {
 public:
  void add(int n = 1) {
    MutexLock lock(mutex_);
    count_ += n;
  }

  void done() {
    {
      MutexLock lock(mutex_);
      --count_;
    }
    cv_.notify_all();
  }

  void wait() {
    MutexLock lock(mutex_);
    while (count_ > 0) cv_.wait(mutex_);
  }

 private:
  Mutex mutex_{"util.waitgroup", 84};
  CondVar cv_;
  int count_ MENOS_GUARDED_BY(mutex_) = 0;
};

}  // namespace menos::util
