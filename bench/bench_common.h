// Shared formatting helpers for the paper-reproduction bench harnesses.
#pragma once

#include <cstdio>
#include <string>

#include "sim/split_sim.h"
#include "util/bytes.h"

namespace menos::bench {

inline void print_header(const std::string& title, const std::string& paper) {
  std::printf("==========================================================\n");
  std::printf("%s\n", title.c_str());
  std::printf("Paper reference: %s\n", paper.c_str());
  std::printf("==========================================================\n");
}

/// Render "N/A" the way the paper's tables do for infeasible points.
inline std::string cell(const sim::SimResult& r, double value) {
  if (!r.feasible) return "N/A";
  char buf[32];
  std::snprintf(buf, sizeof(buf), "%.2f", value);
  return buf;
}

inline sim::SimConfig make_config(const sim::ModelSpec& spec,
                                  core::ServingMode mode, int clients,
                                  int iterations = 15) {
  sim::SimConfig c;
  c.spec = spec;
  c.mode = mode;
  c.num_clients = clients;
  c.iterations = iterations;
  return c;
}

}  // namespace menos::bench
