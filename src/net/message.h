// The split fine-tuning protocol (§2.2 / Fig 4).
//
// Client -> server: Hello (fine-tuning configuration, triggers profiling),
// Forward (intermediate activations x_c), Backward (gradients g_c), Bye.
// Server -> client: HelloAck (profiled memory demands), ForwardResult (x_s),
// BackwardResult (g_s), Error.
#pragma once

#include <cstdint>
#include <optional>
#include <string>
#include <vector>

#include "nn/transformer.h"
#include "optim/optimizer.h"

namespace menos::net {

enum class MessageType : std::uint8_t {
  Hello = 1,
  HelloAck = 2,
  Forward = 3,
  ForwardResult = 4,
  Backward = 5,
  BackwardResult = 6,
  Bye = 7,
  Error = 8,
  // Adapter ownership: the server-side adapter phi_s belongs to the
  // CLIENT (it is the product of the client's fine-tuning); these let the
  // client check it out and restore it.
  FetchAdapter = 9,
  AdapterBlob = 10,
  PushAdapter = 11,
  PushAck = 12,
  // Fault tolerance (docs/FAULTS.md): leases are refreshed by any client
  // traffic, Heartbeat exists for clients that are idle on the wire;
  // ResumeSession reattaches a reconnecting client to its server-held
  // session (adapter + optimizer state) after a transport failure.
  Heartbeat = 13,
  HeartbeatAck = 14,
  ResumeSession = 15,
  ResumeAck = 16,
};

const char* message_type_name(MessageType type) noexcept;

/// A tensor in transit: shape + host-side payload, no device affinity.
struct WireTensor {
  std::vector<std::int64_t> shape;
  std::vector<float> data;

  std::size_t payload_bytes() const noexcept {
    return data.size() * sizeof(float);
  }
};

/// On-wire encoding of the activation payload in Forward / ForwardResult /
/// Backward / BackwardResult. Values are wire bytes — never renumber.
enum class ActivationCodec : std::uint8_t {
  /// Raw f32; bit-exact, and byte-identical to the pre-codec frame layout
  /// except for the one codec tag byte.
  None = 0,
  /// Per-row absmax int8 (quant::Scheme::Int8Rowwise): one f32 scale per
  /// row plus one code byte per element — ~4x smaller for thin links.
  /// Decoding yields exactly quantize-then-dequantize of the source.
  Int8 = 1,
};

const char* activation_codec_name(ActivationCodec codec) noexcept;

/// Per-session heterogeneity profile, declared by the client in its Hello.
/// Every field defaults to "the homogeneous client the rest of the system
/// always assumed", so a default profile is behaviour- and bit-identical to
/// the pre-profile protocol.
struct ClientProfile {
  /// Relative device compute cost: 1.0 = baseline hardware, 4.0 = this
  /// device runs its model halves 4x slower. The client emulates the
  /// slowdown locally (core::Client); the server sees it as telemetry for
  /// straggler-aware scheduling and sim calibration.
  double compute_scale = 1.0;

  /// Declared cut depth — must equal split.front_blocks when nonzero.
  /// 0 = unspecified (server uses the split as sent). Carried explicitly so
  /// the server can reject a Hello whose profile and split disagree instead
  /// of silently serving the wrong trunk.
  int cut_depth = 0;

  /// SplitFrozen mode: the client's device-side input half is frozen (no
  /// adapter, no local input-half optimizer state). The client only ships
  /// activations forward; the server's BackwardResult carries no activation
  /// gradient (empty tensor) because nothing on the device would consume it.
  bool frozen_client_half = false;

  /// Wire encoding for activation/gradient payloads in both directions.
  ActivationCodec codec = ActivationCodec::None;

  /// Advisory link characteristics (bytes/s and one-way seconds; 0 =
  /// unknown). Not enforced by the server — used for diagnostics, bench
  /// labeling, and sim calibration.
  double uplink_bytes_per_s = 0.0;
  double downlink_bytes_per_s = 0.0;
  double link_latency_s = 0.0;

  bool is_default() const noexcept {
    return compute_scale == 1.0 && cut_depth == 0 && !frozen_client_half &&
           codec == ActivationCodec::None && uplink_bytes_per_s == 0.0 &&
           downlink_bytes_per_s == 0.0 && link_latency_s == 0.0;
  }
};

/// Everything the server needs to build this client's serving session
/// (§3.3: "the client sending the fine-tuning configurations to the server
/// for profiling").
struct FinetuneConfig {
  std::string client_name;
  nn::TransformerConfig model;
  nn::SplitSpec split;
  nn::AdapterSpec adapter;
  optim::OptimizerKind optimizer = optim::OptimizerKind::Adam;
  float lr = 1e-3f;
  std::int64_t batch_size = 4;
  std::int64_t seq_len = 32;
  std::uint64_t adapter_seed = 1;
  ClientProfile profile;
};

struct Message {
  MessageType type = MessageType::Error;

  // Hello
  FinetuneConfig config;

  // Forward / ForwardResult / Backward / BackwardResult
  WireTensor tensor;
  std::uint64_t iteration = 0;

  /// Encoding of `tensor` on the wire (never of the in-memory WireTensor,
  /// which always holds floats). Both directions of a session use the codec
  /// declared in the session's ClientProfile.
  ActivationCodec tensor_codec = ActivationCodec::None;

  /// Forward only: this is an evaluation pass — the client will not send a
  /// matching Backward, so the session releases memory immediately in every
  /// serving mode.
  bool eval_only = false;

  /// Backward only: accumulate gradients into the server-side adapter but
  /// do NOT apply the optimizer step yet (client-driven gradient
  /// accumulation across micro-batches; cited by §1 as a standard memory
  /// technique, orthogonal to and composable with Menos).
  bool defer_update = false;

  /// Backward only: learning rate for this step (client-evaluated LR
  /// schedule); 0 keeps the server optimizer's current rate.
  float lr_override = 0.0f;

  // HelloAck: profiled per-operation GPU memory demands (M_f, M_b of §4.2).
  std::uint64_t forward_bytes = 0;
  std::uint64_t backward_bytes = 0;

  // HelloAck / ResumeSession / ResumeAck: opaque session identity minted by
  // the server at handshake; a reconnecting client presents it to reattach.
  std::uint64_t session_token = 0;
  // HelloAck: the server's lease duration (0 = leases disabled). A session
  // silent for longer than this — no traffic, no Heartbeat — may be reaped.
  double lease_seconds = 0.0;

  // ForwardResult / BackwardResult: server-side timing breakdown for this
  // operation, so clients can assemble the Table 2/3 decomposition.
  double compute_seconds = 0.0;
  double schedule_wait_seconds = 0.0;

  // Error
  std::string text;

  // AdapterBlob / PushAdapter: serialized adapter parameters (the
  // CRC-protected format of core/checkpoint.h).
  std::vector<std::uint8_t> blob;

  static Message hello(FinetuneConfig config);
  static Message hello_ack(std::uint64_t forward_bytes,
                           std::uint64_t backward_bytes,
                           std::uint64_t session_token = 0,
                           double lease_seconds = 0.0);
  static Message forward(WireTensor tensor, std::uint64_t iteration);
  static Message forward_result(WireTensor tensor, std::uint64_t iteration);
  static Message backward(WireTensor tensor, std::uint64_t iteration);
  static Message backward_result(WireTensor tensor, std::uint64_t iteration);
  static Message bye();
  static Message error(std::string text);
  static Message fetch_adapter();
  static Message adapter_blob(std::vector<std::uint8_t> blob);
  static Message push_adapter(std::vector<std::uint8_t> blob);
  static Message push_ack();
  static Message heartbeat();
  static Message heartbeat_ack();
  static Message resume_session(std::uint64_t session_token);
  /// `iteration` echoes the server's last completed iteration so clients
  /// can sanity-check where the session left off.
  static Message resume_ack(std::uint64_t session_token,
                            std::uint64_t iteration);
};

/// Encode the message payload (no frame header).
std::vector<std::uint8_t> encode_message(const Message& message);

/// Decode a payload produced by encode_message. Throws ProtocolError on any
/// malformation.
Message decode_message(const std::uint8_t* data, std::size_t size);

/// Full frame: magic, payload length, payload, CRC-32 of the payload.
std::vector<std::uint8_t> frame_message(const Message& message);

/// Frame constants shared with the TCP reassembly loop.
inline constexpr std::uint32_t kFrameMagic = 0x4d454e4fu;  // "MENO"
inline constexpr std::size_t kFrameHeaderBytes = 4 + 8;    // magic + length
inline constexpr std::size_t kFrameTrailerBytes = 4;       // crc32
inline constexpr std::size_t kMaxFramePayload = 1ull << 30;

/// Parse one full frame (header + payload + crc). Throws ProtocolError on
/// bad magic, oversized length, or CRC mismatch.
Message parse_frame(const std::uint8_t* data, std::size_t size);

}  // namespace menos::net
