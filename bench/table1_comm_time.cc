// Table 1: average communication time (s) per fine-tuning iteration.
#include "bench_common.h"

using namespace menos;

namespace {

void row(const char* label, const sim::ModelSpec& spec,
         core::ServingMode mode, int max_clients) {
  std::printf("%-8s  %-8s", spec.name.c_str(), label);
  for (int n = 1; n <= 6; ++n) {
    if (n > max_clients) {
      std::printf("  %-7s", "N/A");
      continue;
    }
    auto r = sim::run_split_finetune(bench::make_config(spec, mode, n));
    std::printf("  %-7s", bench::cell(r, r.avg_comm_s).c_str());
  }
  std::printf("\n");
}

}  // namespace

int main() {
  bench::print_header(
      "Table 1 — average communication time (s) per iteration",
      "OPT vanilla 6.37-6.84, Menos 5.93-7.10; Llama vanilla 3.23-3.91, "
      "Menos 3.11-3.55 (N/A beyond 4 clients for vanilla Llama)");
  std::printf("%-8s  %-8s  %-7s  %-7s  %-7s  %-7s  %-7s  %-7s\n", "model",
              "method", "1", "2", "3", "4", "5", "6");
  row("vanilla", sim::ModelSpec::opt_1_3b(),
      core::ServingMode::VanillaTaskSwap, 6);
  row("menos", sim::ModelSpec::opt_1_3b(), core::ServingMode::MenosOnDemand,
      6);
  row("vanilla", sim::ModelSpec::llama2_7b(),
      core::ServingMode::VanillaTaskSwap, 4);
  row("menos", sim::ModelSpec::llama2_7b(), core::ServingMode::MenosOnDemand,
      4);
  return 0;
}
