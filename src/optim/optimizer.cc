#include "optim/optimizer.h"

#include <cmath>

#include "util/check.h"

namespace menos::optim {

Optimizer::Optimizer(std::vector<nn::Parameter> params)
    : params_(std::move(params)) {
  for (const nn::Parameter& p : params_) {
    MENOS_CHECK_MSG(p.value.requires_grad(),
                    "optimizer given frozen parameter '"
                        << p.name
                        << "' — only adapter parameters are trainable");
  }
}

void Optimizer::zero_grad() {
  for (nn::Parameter& p : params_) p.value.zero_grad();
}

Sgd::Sgd(std::vector<nn::Parameter> params, const SgdOptions& options)
    : Optimizer(std::move(params)), options_(options) {
  if (options_.momentum != 0.0f) {
    velocity_.reserve(params_.size());
    for (const nn::Parameter& p : params_) {
      velocity_.push_back(
          tensor::Tensor::zeros(p.value.shape(), p.value.device()));
    }
  }
}

void Sgd::step() {
  for (std::size_t i = 0; i < params_.size(); ++i) {
    tensor::Tensor& w = params_[i].value;
    tensor::Tensor g = w.grad();
    if (!g.defined()) continue;
    float* pw = w.data();
    const float* pg = g.data();
    const tensor::Index n = w.numel();
    if (options_.momentum != 0.0f) {
      float* pv = velocity_[i].data();
      for (tensor::Index j = 0; j < n; ++j) {
        const float grad = pg[j] + options_.weight_decay * pw[j];
        pv[j] = options_.momentum * pv[j] + grad;
        pw[j] -= options_.lr * pv[j];
      }
    } else {
      for (tensor::Index j = 0; j < n; ++j) {
        const float grad = pg[j] + options_.weight_decay * pw[j];
        pw[j] -= options_.lr * grad;
      }
    }
  }
}

std::size_t Sgd::state_bytes() const {
  std::size_t bytes = 0;
  for (const tensor::Tensor& v : velocity_) bytes += v.bytes();
  return bytes;
}

std::vector<tensor::Tensor> Sgd::state_tensors() const { return velocity_; }

Adam::Adam(std::vector<nn::Parameter> params, const AdamOptions& options)
    : Optimizer(std::move(params)), options_(options) {
  m_.reserve(params_.size());
  v_.reserve(params_.size());
  for (const nn::Parameter& p : params_) {
    m_.push_back(tensor::Tensor::zeros(p.value.shape(), p.value.device()));
    v_.push_back(tensor::Tensor::zeros(p.value.shape(), p.value.device()));
  }
}

void Adam::step() {
  ++t_;
  const float bc1 = 1.0f - std::pow(options_.beta1, static_cast<float>(t_));
  const float bc2 = 1.0f - std::pow(options_.beta2, static_cast<float>(t_));
  for (std::size_t i = 0; i < params_.size(); ++i) {
    tensor::Tensor& w = params_[i].value;
    tensor::Tensor g = w.grad();
    if (!g.defined()) continue;
    float* pw = w.data();
    const float* pg = g.data();
    float* pm = m_[i].data();
    float* pv = v_[i].data();
    const tensor::Index n = w.numel();
    for (tensor::Index j = 0; j < n; ++j) {
      const float grad = pg[j];
      pm[j] = options_.beta1 * pm[j] + (1.0f - options_.beta1) * grad;
      pv[j] = options_.beta2 * pv[j] + (1.0f - options_.beta2) * grad * grad;
      const float mhat = pm[j] / bc1;
      const float vhat = pv[j] / bc2;
      // Decoupled weight decay (AdamW); zero decay reduces to plain Adam.
      pw[j] -= options_.lr *
               (mhat / (std::sqrt(vhat) + options_.eps) +
                options_.weight_decay * pw[j]);
    }
  }
}

std::size_t Adam::state_bytes() const {
  std::size_t bytes = 0;
  for (const tensor::Tensor& t : m_) bytes += t.bytes();
  for (const tensor::Tensor& t : v_) bytes += t.bytes();
  return bytes;
}

std::vector<tensor::Tensor> Adam::state_tensors() const {
  std::vector<tensor::Tensor> all = m_;
  all.insert(all.end(), v_.begin(), v_.end());
  return all;
}

const char* optimizer_kind_name(OptimizerKind kind) noexcept {
  switch (kind) {
    case OptimizerKind::Sgd:   return "sgd";
    case OptimizerKind::Adam:  return "adam";
    case OptimizerKind::AdamW: return "adamw";
  }
  return "?";
}

std::unique_ptr<Optimizer> make_optimizer(OptimizerKind kind,
                                          std::vector<nn::Parameter> params,
                                          float lr) {
  switch (kind) {
    case OptimizerKind::Sgd: {
      SgdOptions o;
      o.lr = lr;
      return std::make_unique<Sgd>(std::move(params), o);
    }
    case OptimizerKind::Adam: {
      AdamOptions o;
      o.lr = lr;
      return std::make_unique<Adam>(std::move(params), o);
    }
    case OptimizerKind::AdamW: {
      AdamOptions o;
      o.lr = lr;
      o.weight_decay = 0.01f;
      return std::make_unique<Adam>(std::move(params), o);
    }
  }
  throw InvalidArgument("unknown optimizer kind");
}

}  // namespace menos::optim
