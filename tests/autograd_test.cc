// Reverse-mode autograd: every differentiable op is verified against
// central finite differences, plus tape mechanics (accumulation, detach,
// no-grad mode, seeded backward for split learning).
#include <gtest/gtest.h>

#include "tensor/ops.h"
#include "test_helpers.h"

namespace menos::tensor {
namespace {

using menos::testing::check_gradients;
using menos::testing::host_device;
using menos::testing::random_leaf;

// ----- tape mechanics -----

TEST(Tape, LeafGradAccumulates) {
  Tensor a = Tensor::full({2}, 3.0f, host_device(), true);
  Tensor l1 = sum(scale(a, 2.0f));
  backward(l1);
  Tensor l2 = sum(scale(a, 2.0f));
  backward(l2);
  auto g = a.grad().to_vector();
  EXPECT_FLOAT_EQ(g[0], 4.0f);  // 2 + 2
  a.zero_grad();
  EXPECT_FALSE(a.grad().defined());
}

TEST(Tape, NoGradGuardSuppressesGraph) {
  Tensor a = Tensor::full({2}, 1.0f, host_device(), true);
  NoGradGuard no_grad;
  Tensor b = scale(a, 2.0f);
  EXPECT_EQ(b.impl()->grad_fn, nullptr);
}

TEST(Tape, NoGradGuardRestores) {
  Tensor a = Tensor::full({2}, 1.0f, host_device(), true);
  {
    NoGradGuard no_grad;
    EXPECT_FALSE(grad_enabled());
    {
      NoGradGuard nested;
      EXPECT_FALSE(grad_enabled());
    }
    EXPECT_FALSE(grad_enabled());
  }
  EXPECT_TRUE(grad_enabled());
  Tensor b = scale(a, 2.0f);
  EXPECT_NE(b.impl()->grad_fn, nullptr);
}

TEST(Tape, DetachBlocksGradient) {
  Tensor a = Tensor::full({2}, 1.0f, host_device(), true);
  Tensor b = scale(a, 2.0f).detach();
  Tensor loss = sum(scale(b, 3.0f));
  backward(loss);
  EXPECT_FALSE(a.grad().defined());
}

TEST(Tape, DiamondGraphAccumulatesBothPaths) {
  Tensor a = Tensor::full({1}, 2.0f, host_device(), true);
  Tensor left = scale(a, 3.0f);
  Tensor right = scale(a, 4.0f);
  Tensor loss = sum(add(left, right));
  backward(loss);
  EXPECT_FLOAT_EQ(a.grad().item(), 7.0f);
}

TEST(Tape, SeededBackwardMatchesChainRule) {
  // Split-learning resume: backward(x_c, g) must equal d(sum(g*f(x)))/dx.
  Tensor a = Tensor::from_vector({1, 2}, {2}, host_device(), true);
  Tensor y = scale(a, 5.0f);
  Tensor seed = Tensor::from_vector({10, 20}, {2}, host_device());
  backward(y, seed);
  auto g = a.grad().to_vector();
  EXPECT_FLOAT_EQ(g[0], 50.0f);
  EXPECT_FLOAT_EQ(g[1], 100.0f);
}

TEST(Tape, SeedSizeMismatchThrows) {
  Tensor a = Tensor::full({2}, 1.0f, host_device(), true);
  Tensor y = scale(a, 2.0f);
  Tensor seed = Tensor::zeros({3}, host_device());
  EXPECT_THROW(backward(y, seed), InvalidArgument);
}

TEST(Tape, SplitBackwardEqualsEndToEnd) {
  // Cutting the chain at h and resuming with the upstream gradient must
  // reproduce the uncut gradient — the §2.2 correctness core.
  util::Rng rng(11);
  Tensor w1 = random_leaf({4, 4}, rng, host_device());
  Tensor w2 = random_leaf({4, 4}, rng, host_device());
  Tensor x = Tensor::empty({2, 4}, host_device());
  rng.fill_normal(x.data(), 8, 1.0f);

  // End-to-end.
  Tensor h_full = gelu(matmul(x, w1));
  Tensor loss_full = sum(matmul(h_full, w2));
  backward(loss_full);
  auto gw1_full = w1.grad().to_vector();
  auto gw2_full = w2.grad().to_vector();
  w1.zero_grad();
  w2.zero_grad();

  // Split at h: "server" computes h, "client" computes loss from a leaf
  // copy of h, gradients flow back through the seed.
  Tensor h_srv = gelu(matmul(x, w1));
  Tensor h_leaf = h_srv.clone();
  h_leaf.set_requires_grad(true);
  Tensor loss_client = sum(matmul(h_leaf, w2));
  backward(loss_client);
  backward(h_srv, h_leaf.grad());

  auto gw1_split = w1.grad().to_vector();
  auto gw2_split = w2.grad().to_vector();
  for (std::size_t i = 0; i < gw1_full.size(); ++i) {
    EXPECT_NEAR(gw1_full[i], gw1_split[i], 1e-5f);
  }
  for (std::size_t i = 0; i < gw2_full.size(); ++i) {
    EXPECT_NEAR(gw2_full[i], gw2_split[i], 1e-5f);
  }
}

// ----- per-op gradient checks -----

TEST(GradCheck, AddSubMul) {
  util::Rng rng(1);
  Tensor a = random_leaf({3, 4}, rng, host_device());
  Tensor b = random_leaf({3, 4}, rng, host_device());
  check_gradients([&] { return sum(mul(add(a, b), sub(a, b))); }, {a, b});
}

TEST(GradCheck, ScaleAndBias) {
  util::Rng rng(2);
  Tensor x = random_leaf({2, 5}, rng, host_device());
  Tensor bias = random_leaf({5}, rng, host_device());
  check_gradients([&] { return sum(add_bias(scale(x, 1.7f), bias)); },
                  {x, bias});
}

TEST(GradCheck, Activations) {
  util::Rng rng(3);
  Tensor x = random_leaf({4, 4}, rng, host_device(), 1.0f);
  check_gradients([&] { return sum(gelu(x)); }, {x});
  check_gradients([&] { return sum(silu(x)); }, {x});
  check_gradients([&] { return mean(relu(x)); }, {x}, 1e-2f, 4e-2f, 5e-3f);
}

TEST(GradCheck, Matmul2D) {
  util::Rng rng(4);
  Tensor a = random_leaf({3, 4}, rng, host_device());
  Tensor b = random_leaf({4, 2}, rng, host_device());
  check_gradients([&] { return sum(matmul(a, b)); }, {a, b});
}

TEST(GradCheck, MatmulBatchedSharedRight) {
  util::Rng rng(5);
  Tensor a = random_leaf({2, 3, 4}, rng, host_device());
  Tensor w = random_leaf({4, 3}, rng, host_device());
  check_gradients([&] { return sum(matmul(a, w)); }, {a, w});
}

TEST(GradCheck, MatmulBatchedBoth) {
  util::Rng rng(6);
  Tensor a = random_leaf({2, 2, 3}, rng, host_device());
  Tensor b = random_leaf({2, 3, 2}, rng, host_device());
  check_gradients([&] { return sum(matmul(a, b)); }, {a, b});
}

TEST(GradCheck, ReshapePermute) {
  util::Rng rng(7);
  Tensor a = random_leaf({2, 3, 4}, rng, host_device());
  check_gradients(
      [&] {
        Tensor p = permute(a, {2, 0, 1});
        return sum(mul(reshape(p, {4, 6}), reshape(p, {4, 6})));
      },
      {a});
}

TEST(GradCheck, ConcatSlice) {
  util::Rng rng(8);
  Tensor a = random_leaf({2, 2, 3}, rng, host_device());
  Tensor b = random_leaf({2, 1, 3}, rng, host_device());
  check_gradients(
      [&] {
        Tensor c = concat_dim1(a, b);
        return sum(mul(slice_dim1(c, 1, 2), slice_dim1(c, 0, 2)));
      },
      {a, b});
}

TEST(GradCheck, Softmax) {
  util::Rng rng(9);
  Tensor x = random_leaf({3, 5}, rng, host_device(), 1.0f);
  Tensor weight = Tensor::empty({3, 5}, host_device());
  rng.fill_normal(weight.data(), 15, 1.0f);
  check_gradients([&] { return sum(mul(softmax_lastdim(x), weight)); }, {x});
}

TEST(GradCheck, CausalSoftmax) {
  util::Rng rng(10);
  Tensor x = random_leaf({1, 2, 4, 4}, rng, host_device(), 1.0f);
  Tensor weight = Tensor::empty({1, 2, 4, 4}, host_device());
  rng.fill_normal(weight.data(), 32, 1.0f);
  check_gradients([&] { return sum(mul(causal_masked_softmax(x), weight)); },
                  {x});
}

TEST(GradCheck, LayerNorm) {
  util::Rng rng(11);
  Tensor x = random_leaf({3, 6}, rng, host_device(), 1.0f);
  Tensor gamma = random_leaf({6}, rng, host_device(), 0.5f);
  Tensor beta = random_leaf({6}, rng, host_device(), 0.5f);
  Tensor weight = Tensor::empty({3, 6}, host_device());
  rng.fill_normal(weight.data(), 18, 1.0f);
  check_gradients(
      [&] { return sum(mul(layer_norm(x, gamma, beta), weight)); },
      {x, gamma, beta}, 1e-2f, 6e-2f, 4e-3f);
}

TEST(GradCheck, RmsNorm) {
  util::Rng rng(12);
  Tensor x = random_leaf({3, 6}, rng, host_device(), 1.0f);
  Tensor gamma = random_leaf({6}, rng, host_device(), 0.5f);
  Tensor weight = Tensor::empty({3, 6}, host_device());
  rng.fill_normal(weight.data(), 18, 1.0f);
  check_gradients([&] { return sum(mul(rms_norm(x, gamma), weight)); },
                  {x, gamma}, 1e-2f, 6e-2f, 4e-3f);
}

TEST(GradCheck, Embedding) {
  util::Rng rng(13);
  Tensor w = random_leaf({5, 3}, rng, host_device());
  const std::vector<std::int32_t> ids{0, 2, 2, 4};
  check_gradients([&] { return sum(embedding(w, ids, 2, 2)); }, {w});
}

TEST(GradCheck, CrossEntropy) {
  util::Rng rng(14);
  Tensor logits = random_leaf({4, 6}, rng, host_device(), 1.0f);
  const std::vector<std::int32_t> targets{1, 0, 5, 3};
  check_gradients([&] { return cross_entropy(logits, targets); }, {logits});
}

TEST(GradCheck, CrossEntropyWithIgnore) {
  util::Rng rng(15);
  Tensor logits = random_leaf({3, 4}, rng, host_device(), 1.0f);
  const std::vector<std::int32_t> targets{2, -1, 0};
  check_gradients([&] { return cross_entropy(logits, targets); }, {logits});
}

// ----- parameterized sweep: composite MLP chains across shapes -----

struct ShapeCase {
  Index batch;
  Index in;
  Index hidden;
  Index out;
};

class MlpGradSweep : public ::testing::TestWithParam<ShapeCase> {};

TEST_P(MlpGradSweep, EndToEndGradcheck) {
  const ShapeCase c = GetParam();
  util::Rng rng(100 + static_cast<std::uint64_t>(c.batch * 1000 + c.in));
  Tensor x = random_leaf({c.batch, c.in}, rng, host_device());
  Tensor w1 = random_leaf({c.in, c.hidden}, rng, host_device());
  Tensor b1 = random_leaf({c.hidden}, rng, host_device(), 0.1f);
  Tensor w2 = random_leaf({c.hidden, c.out}, rng, host_device());
  std::vector<std::int32_t> targets;
  for (Index i = 0; i < c.batch; ++i) {
    targets.push_back(static_cast<std::int32_t>(i % c.out));
  }
  check_gradients(
      [&] {
        Tensor h = gelu(add_bias(matmul(x, w1), b1));
        return cross_entropy(matmul(h, w2), targets);
      },
      {x, w1, b1, w2}, 1e-2f, 6e-2f, 4e-3f);
}

INSTANTIATE_TEST_SUITE_P(Shapes, MlpGradSweep,
                         ::testing::Values(ShapeCase{1, 3, 4, 2},
                                           ShapeCase{2, 4, 8, 3},
                                           ShapeCase{3, 6, 5, 4},
                                           ShapeCase{4, 2, 6, 2},
                                           ShapeCase{2, 8, 3, 5}));

}  // namespace
}  // namespace menos::tensor
