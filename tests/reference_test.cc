// Cross-checks against independent brute-force reference implementations:
// matmul vs a naive triple loop over random shapes, attention vs a
// per-position implementation, softmax vs direct exponentials, and a fuzz
// sweep over the wire decoder.
#include <gtest/gtest.h>

#include <cmath>

#include "net/message.h"
#include "nn/attention.h"
#include "test_helpers.h"

namespace menos {
namespace {

using menos::testing::host_device;
using tensor::Index;
using tensor::Shape;
using tensor::Tensor;

// ----- matmul sweep vs naive reference -----

struct MatmulCase {
  Index batch;  // 0 = plain 2-D
  Index m;
  Index k;
  Index n;
  bool shared_rhs;
};

class MatmulSweep : public ::testing::TestWithParam<MatmulCase> {};

TEST_P(MatmulSweep, MatchesNaiveTripleLoop) {
  const MatmulCase c = GetParam();
  util::Rng rng(static_cast<std::uint64_t>(c.m * 131 + c.k * 17 + c.n));
  const Index b = c.batch == 0 ? 1 : c.batch;

  Shape a_shape = c.batch == 0 ? Shape{c.m, c.k} : Shape{c.batch, c.m, c.k};
  Shape b_shape = c.shared_rhs || c.batch == 0
                      ? Shape{c.k, c.n}
                      : Shape{c.batch, c.k, c.n};
  Tensor A = Tensor::empty(a_shape, host_device());
  Tensor B = Tensor::empty(b_shape, host_device());
  rng.fill_normal(A.data(), static_cast<std::size_t>(A.numel()), 1.0f);
  rng.fill_normal(B.data(), static_cast<std::size_t>(B.numel()), 1.0f);

  Tensor C = tensor::matmul(A, B);
  ASSERT_EQ(C.numel(), b * c.m * c.n);

  const float* pa = A.data();
  const float* pb = B.data();
  const float* pc = C.data();
  for (Index bi = 0; bi < b; ++bi) {
    const float* a_mat = pa + bi * c.m * c.k;
    const float* b_mat = c.shared_rhs || c.batch == 0
                             ? pb
                             : pb + bi * c.k * c.n;
    for (Index i = 0; i < c.m; ++i) {
      for (Index j = 0; j < c.n; ++j) {
        double acc = 0.0;
        for (Index p = 0; p < c.k; ++p) {
          acc += static_cast<double>(a_mat[i * c.k + p]) *
                 static_cast<double>(b_mat[p * c.n + j]);
        }
        EXPECT_NEAR(pc[(bi * c.m + i) * c.n + j], static_cast<float>(acc),
                    1e-3f * (1.0f + std::fabs(static_cast<float>(acc))))
            << "batch " << bi << " (" << i << "," << j << ")";
      }
    }
  }
}

INSTANTIATE_TEST_SUITE_P(
    Shapes, MatmulSweep,
    ::testing::Values(MatmulCase{0, 1, 1, 1, true},
                      MatmulCase{0, 7, 3, 5, true},
                      MatmulCase{0, 16, 16, 16, true},
                      MatmulCase{0, 1, 33, 2, true},
                      MatmulCase{2, 4, 6, 3, true},
                      MatmulCase{3, 5, 2, 7, true},
                      MatmulCase{2, 3, 4, 5, false},
                      MatmulCase{4, 2, 8, 2, false},
                      MatmulCase{1, 9, 1, 9, false}));

// ----- attention vs per-position reference -----

TEST(AttentionReference, MatchesBruteForce) {
  // Reference: for every (batch, head, position), compute the causal
  // softmax-weighted sum of value vectors directly.
  const Index B = 2, T = 5, H = 2, D = 3;
  const Index C = H * D;
  util::Rng rng(77);
  Tensor q = Tensor::empty({B, T, C}, host_device());
  Tensor k = Tensor::empty({B, T, C}, host_device());
  Tensor v = Tensor::empty({B, T, C}, host_device());
  rng.fill_normal(q.data(), static_cast<std::size_t>(q.numel()), 0.8f);
  rng.fill_normal(k.data(), static_cast<std::size_t>(k.numel()), 0.8f);
  rng.fill_normal(v.data(), static_cast<std::size_t>(v.numel()), 0.8f);

  // Library path (the same sequence of ops CausalSelfAttention::forward
  // uses, minus the projections).
  const auto split_heads = [&](const Tensor& m) {
    return tensor::permute(tensor::reshape(m, {B, T, H, D}), {0, 2, 1, 3});
  };
  Tensor qh = split_heads(q);
  Tensor kh = split_heads(k);
  Tensor vh = split_heads(v);
  Tensor scores = tensor::scale(tensor::matmul(qh, tensor::transpose_last(kh)),
                                1.0f / std::sqrt(static_cast<float>(D)));
  Tensor ctx = tensor::matmul(tensor::causal_masked_softmax(scores), vh);
  Tensor lib = tensor::reshape(tensor::permute(ctx, {0, 2, 1, 3}), {B, T, C});
  const float* out = lib.data();

  const float* pq = q.data();
  const float* pk = k.data();
  const float* pv = v.data();
  for (Index b = 0; b < B; ++b) {
    for (Index h = 0; h < H; ++h) {
      for (Index t = 0; t < T; ++t) {
        // Scores against positions 0..t.
        std::vector<double> s(static_cast<std::size_t>(t + 1));
        for (Index u = 0; u <= t; ++u) {
          double dot = 0.0;
          for (Index d = 0; d < D; ++d) {
            dot += static_cast<double>(pq[(b * T + t) * C + h * D + d]) *
                   static_cast<double>(pk[(b * T + u) * C + h * D + d]);
          }
          s[static_cast<std::size_t>(u)] = dot / std::sqrt(double(D));
        }
        double mx = s[0];
        for (double x : s) mx = std::max(mx, x);
        double z = 0.0;
        for (double& x : s) {
          x = std::exp(x - mx);
          z += x;
        }
        for (Index d = 0; d < D; ++d) {
          double acc = 0.0;
          for (Index u = 0; u <= t; ++u) {
            acc += s[static_cast<std::size_t>(u)] / z *
                   static_cast<double>(pv[(b * T + u) * C + h * D + d]);
          }
          EXPECT_NEAR(out[(b * T + t) * C + h * D + d],
                      static_cast<float>(acc), 2e-4f)
              << "b=" << b << " h=" << h << " t=" << t << " d=" << d;
        }
      }
    }
  }
}

// ----- layer norm / rms norm reference over random shapes -----

class NormSweep : public ::testing::TestWithParam<Index> {};

TEST_P(NormSweep, LayerNormMatchesDirectFormula) {
  const Index n = GetParam();
  util::Rng rng(static_cast<std::uint64_t>(n) * 31);
  Tensor x = Tensor::empty({3, n}, host_device());
  Tensor gamma = Tensor::empty({n}, host_device());
  Tensor beta = Tensor::empty({n}, host_device());
  rng.fill_normal(x.data(), static_cast<std::size_t>(x.numel()), 2.0f);
  rng.fill_normal(gamma.data(), static_cast<std::size_t>(n), 0.5f);
  rng.fill_normal(beta.data(), static_cast<std::size_t>(n), 0.5f);
  const float eps = 1e-5f;
  Tensor y = tensor::layer_norm(x, gamma, beta, eps);
  for (Index r = 0; r < 3; ++r) {
    double mu = 0.0;
    for (Index j = 0; j < n; ++j) mu += x.data()[r * n + j];
    mu /= n;
    double var = 0.0;
    for (Index j = 0; j < n; ++j) {
      const double d = x.data()[r * n + j] - mu;
      var += d * d;
    }
    var /= n;
    for (Index j = 0; j < n; ++j) {
      const double expected =
          (x.data()[r * n + j] - mu) / std::sqrt(var + eps) *
              gamma.data()[j] +
          beta.data()[j];
      EXPECT_NEAR(y.data()[r * n + j], expected, 2e-4);
    }
  }
}

TEST_P(NormSweep, RmsNormMatchesDirectFormula) {
  const Index n = GetParam();
  util::Rng rng(static_cast<std::uint64_t>(n) * 37);
  Tensor x = Tensor::empty({2, n}, host_device());
  Tensor gamma = Tensor::empty({n}, host_device());
  rng.fill_normal(x.data(), static_cast<std::size_t>(x.numel()), 2.0f);
  rng.fill_normal(gamma.data(), static_cast<std::size_t>(n), 0.5f);
  const float eps = 1e-5f;
  Tensor y = tensor::rms_norm(x, gamma, eps);
  for (Index r = 0; r < 2; ++r) {
    double ms = 0.0;
    for (Index j = 0; j < n; ++j) {
      ms += static_cast<double>(x.data()[r * n + j]) * x.data()[r * n + j];
    }
    ms /= n;
    for (Index j = 0; j < n; ++j) {
      const double expected =
          x.data()[r * n + j] / std::sqrt(ms + eps) * gamma.data()[j];
      EXPECT_NEAR(y.data()[r * n + j], expected, 2e-4);
    }
  }
}

INSTANTIATE_TEST_SUITE_P(Widths, NormSweep,
                         ::testing::Values(1, 2, 3, 8, 17, 64, 100));

// ----- wire decoder fuzzing -----

class WireFuzz : public ::testing::TestWithParam<std::uint64_t> {};

TEST_P(WireFuzz, RandomBytesNeverCrashDecoder) {
  util::Rng rng(GetParam());
  for (int trial = 0; trial < 400; ++trial) {
    const std::size_t len = rng.next_below(512);
    std::vector<std::uint8_t> junk(len);
    for (auto& b : junk) b = static_cast<std::uint8_t>(rng.next_u64());
    try {
      net::decode_message(junk.data(), junk.size());
    } catch (const ProtocolError&) {
      // the only acceptable outcome for malformed input
    }
    try {
      net::parse_frame(junk.data(), junk.size());
    } catch (const ProtocolError&) {
    }
  }
}

TEST_P(WireFuzz, TruncatedValidFramesRejectedCleanly) {
  util::Rng rng(GetParam() ^ 0xabcdef);
  net::WireTensor t;
  t.shape = {4, 4};
  t.data.assign(16, 1.5f);
  const auto frame = net::frame_message(net::Message::forward(t, 3));
  for (int trial = 0; trial < 64; ++trial) {
    const std::size_t cut = rng.next_below(frame.size());
    try {
      net::parse_frame(frame.data(), cut);
      FAIL() << "truncated frame accepted at " << cut << " bytes";
    } catch (const ProtocolError&) {
    }
  }
}

TEST_P(WireFuzz, BitflippedValidPayloadsRejectedOrEqualLength) {
  // Flipping bits inside a framed message must never crash; the CRC layer
  // rejects virtually all of them.
  util::Rng rng(GetParam() ^ 0x1234);
  const auto frame =
      net::frame_message(net::Message::hello(net::FinetuneConfig{}));
  for (int trial = 0; trial < 200; ++trial) {
    auto copy = frame;
    copy[rng.next_below(copy.size())] ^=
        static_cast<std::uint8_t>(1u << rng.next_below(8));
    try {
      net::parse_frame(copy.data(), copy.size());
    } catch (const ProtocolError&) {
    } catch (const menos::Error&) {
      // decoded but semantically invalid — also acceptable
    }
  }
}

INSTANTIATE_TEST_SUITE_P(Seeds, WireFuzz,
                         ::testing::Values(1, 2, 3, 4, 5, 6, 7, 8));

}  // namespace
}  // namespace menos
