// Decoder-only transformer families and their topological split into the
// three sections of Fig 1: the client-side input section f_i, the
// server-side main body f_s, and the client-side output section f_o.
//
// Two architecture families mirror the paper's evaluation models:
//  * Opt   — pre-LayerNorm blocks, biased projections, GELU MLP, learned
//            positional embeddings (the OPT-1.3B family).
//  * Llama — RMSNorm blocks, bias-free projections, SiLU-gated MLP (the
//            Llama-2-7B family). Rotary embeddings are substituted with
//            learned positional embeddings — a documented simplification
//            (DESIGN.md §1) that does not affect any memory/scheduling
//            behaviour Menos measures.
#pragma once

#include <functional>
#include <memory>
#include <vector>

#include "nn/attention.h"
#include "tensor/graph.h"

namespace menos::nn {

enum class ModelFamily { Opt, Llama };

const char* model_family_name(ModelFamily family) noexcept;

struct TransformerConfig {
  ModelFamily family = ModelFamily::Opt;
  tensor::Index vocab_size = 96;
  tensor::Index dim = 64;
  int n_layers = 4;
  int n_heads = 4;
  /// Grouped-query attention: number of key/value heads; 0 means
  /// n_kv_heads == n_heads (standard multi-head attention).
  int n_kv_heads = 0;
  tensor::Index ffn_hidden = 256;
  tensor::Index max_seq = 128;

  /// Laptop-scale stand-ins for the paper's models (same family traits,
  /// tiny dimensions) used by the numeric experiments and tests.
  static TransformerConfig tiny_opt();
  static TransformerConfig tiny_llama();

  /// Total parameter count implied by this config (used to cross-check the
  /// analytic ModelSpecs in src/sim against real construction).
  std::int64_t parameter_count() const;

  void validate() const;
};

/// How the model is cut (§3.1: clients choose the cut point on their own
/// privacy/efficiency trade-off). The server hosts blocks
/// [front_blocks, n_layers - back_blocks); the paper's setup is
/// front_blocks = 1, back_blocks = 0 (embedding + first block + head on the
/// client).
struct SplitSpec {
  int front_blocks = 1;
  int back_blocks = 0;

  void validate(const TransformerConfig& config) const;
};

/// One decoder block, family-dispatched.
class TransformerBlock final : public Module {
 public:
  TransformerBlock(const std::string& name, const TransformerConfig& config,
                   const AdapterSpec& adapter, ParameterSource& source,
                   gpusim::Device& device, util::Rng& adapter_rng);

  tensor::Tensor forward(const tensor::Tensor& x);

 private:
  ModelFamily family_;
  // OPT family
  std::unique_ptr<LayerNormLayer> ln1_;
  std::unique_ptr<LayerNormLayer> ln2_;
  std::unique_ptr<Linear> fc1_;
  std::unique_ptr<Linear> fc2_;
  // Llama family
  std::unique_ptr<RMSNormLayer> rn1_;
  std::unique_ptr<RMSNormLayer> rn2_;
  std::unique_ptr<Linear> gate_;
  std::unique_ptr<Linear> up_;
  std::unique_ptr<Linear> down_;
  // Shared
  std::unique_ptr<CausalSelfAttention> attn_;
};

/// Client-side f_i: token + positional embeddings, optional prefix adapter,
/// and the first `front_blocks` decoder blocks.
class InputSection final : public Module {
 public:
  InputSection(const TransformerConfig& config, const SplitSpec& split,
               const AdapterSpec& adapter, ParameterSource& source,
               gpusim::Device& device, util::Rng& adapter_rng);

  /// ids: batch*seq token ids -> activations x_c of shape [B, P+T, C].
  tensor::Tensor forward(const std::vector<std::int32_t>& ids,
                         tensor::Index batch, tensor::Index seq);

  int prefix_len() const noexcept;
  const TransformerConfig& config() const noexcept { return config_; }

 private:
  TransformerConfig config_;
  std::unique_ptr<Embedding> tok_emb_;
  std::unique_ptr<Embedding> pos_emb_;
  std::unique_ptr<PrefixAdapter> prefix_;
  std::vector<std::unique_ptr<TransformerBlock>> blocks_;
};

/// Server-side f_s: the main body of decoder blocks. Blocks may live on
/// different GPUs (the multi-GPU layer assignment of §3.1: "we can
/// manually assign different layers across multiple GPUs while loading the
/// model"); forward() moves activations across device boundaries.
class ServerSection final : public Module {
 public:
  /// Single-device form.
  ServerSection(const TransformerConfig& config, const SplitSpec& split,
                const AdapterSpec& adapter, ParameterSource& source,
                gpusim::Device& device, util::Rng& adapter_rng);

  /// Multi-device form: `device_for(i)` names the device hosting global
  /// block index i (must match where the shared store placed its
  /// parameters).
  ServerSection(const TransformerConfig& config, const SplitSpec& split,
                const AdapterSpec& adapter, ParameterSource& source,
                const std::function<gpusim::Device&(int)>& device_for,
                util::Rng& adapter_rng);

  tensor::Tensor forward(const tensor::Tensor& x_c);

  int block_count() const noexcept { return static_cast<int>(blocks_.size()); }

  /// Device hosting the first server block (where inbound activations are
  /// materialized).
  gpusim::Device& entry_device() const;

 private:
  std::vector<std::unique_ptr<TransformerBlock>> blocks_;
  std::vector<gpusim::Device*> devices_;  // parallel to blocks_
};

/// Client-side f_o: trailing blocks (if any), final norm, LM head, loss.
class OutputSection final : public Module {
 public:
  OutputSection(const TransformerConfig& config, const SplitSpec& split,
                const AdapterSpec& adapter, ParameterSource& source,
                gpusim::Device& device, util::Rng& adapter_rng);

  /// x_s: [B, P+T, C] server activations; strips `prefix_len` leading
  /// positions and returns logits [B*T, V].
  tensor::Tensor logits(const tensor::Tensor& x_s, int prefix_len);

  /// Mean next-token cross-entropy against `targets` (size B*T).
  tensor::Tensor loss(const tensor::Tensor& x_s, int prefix_len,
                      const std::vector<std::int32_t>& targets);

 private:
  TransformerConfig config_;
  std::vector<std::unique_ptr<TransformerBlock>> blocks_;
  std::unique_ptr<LayerNormLayer> final_ln_;
  std::unique_ptr<RMSNormLayer> final_rn_;
  std::unique_ptr<Linear> lm_head_;
};

/// Greedy (argmax) next-token generation through the three sections on one
/// device. The last `max_seq` tokens form the context window; returns the
/// prompt extended by `n_new` generated ids. Runs in no-grad mode.
std::vector<std::int32_t> greedy_generate(InputSection& f_i,
                                          ServerSection& f_s,
                                          OutputSection& f_o,
                                          std::vector<std::int32_t> prompt,
                                          int n_new);

/// Stochastic generation: temperature-scaled softmax restricted to the
/// `top_k` most likely tokens, sampled from `rng`. temperature -> 0 or
/// top_k == 1 reduces to greedy decoding.
std::vector<std::int32_t> sample_generate(InputSection& f_i,
                                          ServerSection& f_s,
                                          OutputSection& f_o,
                                          std::vector<std::int32_t> prompt,
                                          int n_new, float temperature,
                                          int top_k, util::Rng& rng);

/// The three sections wired together on one device — the "local
/// fine-tuning" reference of Figs 8/9 and the equivalence tests.
class LocalModel final : public Module {
 public:
  LocalModel(const TransformerConfig& config, const SplitSpec& split,
             const AdapterSpec& adapter, ParameterSource& source,
             gpusim::Device& device, std::uint64_t adapter_seed);

  tensor::Tensor loss(const std::vector<std::int32_t>& ids,
                      const std::vector<std::int32_t>& targets,
                      tensor::Index batch, tensor::Index seq);

  /// Like loss(), but runs through a captured per-step op graph
  /// (tensor/graph.h): the first call records the step, later calls with
  /// the same batch/seq replay it with fused elementwise chains. Falls
  /// back to plain loss() whenever the step cannot be captured (dropout
  /// active, adapter/GQA ops the graph doesn't know, changed shapes) —
  /// results are bit-identical to loss() either way.
  tensor::Tensor loss_stepped(const std::vector<std::int32_t>& ids,
                              const std::vector<std::int32_t>& targets,
                              tensor::Index batch, tensor::Index seq);

  /// The captured step graph (un-ready until the first successful
  /// loss_stepped capture). Exposed for warm-up and cost reporting.
  tensor::graph::StepGraph& step_graph() noexcept { return step_graph_; }

  InputSection& input() noexcept { return *input_; }
  ServerSection& server() noexcept { return *server_; }
  OutputSection& output() noexcept { return *output_; }

 private:
  std::unique_ptr<InputSection> input_;
  std::unique_ptr<ServerSection> server_;
  std::unique_ptr<OutputSection> output_;
  tensor::graph::StepGraph step_graph_;
  bool capture_failed_ = false;
};

}  // namespace menos::nn
