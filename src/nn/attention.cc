#include "nn/attention.h"

#include <cmath>

namespace menos::nn {

CausalSelfAttention::CausalSelfAttention(const std::string& name,
                                         tensor::Index dim, int n_heads,
                                         bool use_bias,
                                         const AdapterSpec& adapter,
                                         ParameterSource& source,
                                         gpusim::Device& device,
                                         util::Rng& adapter_rng,
                                         int n_kv_heads)
    : dim_(dim),
      n_heads_(n_heads),
      n_kv_heads_(n_kv_heads == 0 ? n_heads : n_kv_heads) {
  MENOS_CHECK_MSG(n_heads > 0 && dim % n_heads == 0,
                  "attention dim " << dim << " not divisible by heads "
                                   << n_heads);
  MENOS_CHECK_MSG(n_kv_heads_ > 0 && n_heads % n_kv_heads_ == 0,
                  "query heads " << n_heads
                                 << " not divisible by kv heads "
                                 << n_kv_heads_);
  head_dim_ = dim / n_heads;
  const tensor::Index kv_dim = head_dim_ * n_kv_heads_;
  const bool lora = adapter.type == AdapterType::Lora;
  q_ = make_projection(name + ".q", dim, dim, use_bias,
                       lora && adapter.target_q, adapter, source, device,
                       adapter_rng);
  k_ = make_projection(name + ".k", dim, kv_dim, use_bias, false, adapter,
                       source, device, adapter_rng);
  v_ = make_projection(name + ".v", dim, kv_dim, use_bias,
                       lora && adapter.target_v, adapter, source, device,
                       adapter_rng);
  o_ = make_projection(name + ".o", dim, dim, use_bias, false, adapter,
                       source, device, adapter_rng);
  register_child("q", q_.get());
  register_child("k", k_.get());
  register_child("v", v_.get());
  register_child("o", o_.get());
}

std::unique_ptr<Linear> CausalSelfAttention::make_projection(
    const std::string& name, tensor::Index in, tensor::Index out,
    bool use_bias, bool lora_target, const AdapterSpec& adapter,
    ParameterSource& source, gpusim::Device& device, util::Rng& adapter_rng) {
  if (lora_target) {
    return std::make_unique<LoraLinear>(name, in, out, use_bias,
                                        adapter.rank, adapter.alpha, source,
                                        device, adapter_rng);
  }
  const bool bitfit = adapter.type == AdapterType::BitFit && use_bias;
  return std::make_unique<Linear>(name, in, out, use_bias, source, device,
                                  /*trainable_bias=*/bitfit);
}

tensor::Tensor CausalSelfAttention::forward(const tensor::Tensor& x) {
  using namespace menos::tensor;
  MENOS_CHECK_MSG(x.ndim() == 3 && x.dim(2) == dim_,
                  "attention input must be [B, T, " << dim_ << "], got "
                                                    << shape_to_string(x.shape()));
  const Index b = x.dim(0);
  const Index t = x.dim(1);

  Tensor q = q_->forward(x);
  Tensor k = k_->forward(x);
  Tensor v = v_->forward(x);

  // [B, T, H*D] -> [B, H, T, D]
  const auto split_heads = [&](const Tensor& m, int heads) {
    return permute(reshape(m, {b, t, heads, head_dim_}), {0, 2, 1, 3});
  };
  q = split_heads(q, n_heads_);
  k = split_heads(k, n_kv_heads_);
  v = split_heads(v, n_kv_heads_);
  if (n_kv_heads_ != n_heads_) {
    // Grouped-query expansion: each kv head serves repeat consecutive
    // query heads. tensor::repeat_heads is graph-replayable, so GQA
    // models capture like MHA ones.
    const int repeat = n_heads_ / n_kv_heads_;
    k = repeat_heads(k, repeat);
    v = repeat_heads(v, repeat);
  }

  Tensor scores = matmul(q, transpose_last(k));  // [B, H, T, T]
  scores = scale(scores, 1.0f / std::sqrt(static_cast<float>(head_dim_)));
  Tensor attn = causal_masked_softmax(scores);
  Tensor ctx = matmul(attn, v);  // [B, H, T, D]

  // [B, H, T, D] -> [B, T, C]
  ctx = reshape(permute(ctx, {0, 2, 1, 3}), {b, t, dim_});
  return o_->forward(ctx);
}

}  // namespace menos::nn
