// Dynamic allocation auditing for simulated devices — a memcheck for the
// byte-accounting substrate every Menos memory claim rests on.
//
// AuditDevice decorates any gpusim::Device and verifies, at runtime, the
// contract the Device interface only documents:
//
//   * every deallocate() matches a live allocate() from the SAME device
//     (foreign pointers are reported),
//   * the `bytes` argument equals the original request (size mismatches
//     are reported),
//   * no allocation is freed twice (double frees are reported),
//   * freed memory is poisoned with kPoisonByte so use-after-free reads
//     produce loud garbage (and, in quarantine mode, stay observable), and
//   * a device destroyed with live allocations logs a per-tag leak table.
//
// Every live allocation carries a caller tag from the innermost
// AllocTagScope on the allocating thread, so leak reports name the owning
// subsystem ("session-7", "profiling", ...) rather than a bare pointer.
//
// Debug builds wrap every make_host_device()/make_sim_gpu() result in an
// AuditDevice automatically (CMake option MENOS_AUDIT_ALLOC, ON by default
// when CMAKE_BUILD_TYPE=Debug). By default errors abort with a diagnostic;
// tests that *expect* misuse construct one with abort_on_error=false and
// inspect errors()/leak_report() instead. See docs/ANALYSIS.md.
#pragma once

#include <cstdint>
#include <deque>
#include <memory>
#include <string>
#include <unordered_map>
#include <unordered_set>
#include <vector>

#include "gpusim/device.h"
#include "util/mutex.h"
#include "util/thread_annotations.h"

namespace menos::gpusim {

/// Byte written over freed blocks (and over quarantined blocks until they
/// are really released): 0xEF, "erased float-ish" — decodes to a huge
/// negative float, so arithmetic on poisoned tensors diverges instantly.
inline constexpr std::uint8_t kPoisonByte = 0xEF;

struct AuditOptions {
  /// Print the diagnostic and abort() on double-free / size-mismatch /
  /// foreign-pointer. When false the error is recorded (errors()) and the
  /// offending free is dropped, which keeps the accounting consistent for
  /// post-mortem inspection in tests.
  bool abort_on_error = true;

  /// Keep up to this many bytes of freed blocks resident (contents
  /// poisoned) instead of releasing them immediately. While quarantined, a
  /// block's memory is still owned by the device, so reading the poison
  /// pattern after free is defined behavior — the audit tests rely on it.
  /// The accounting reported by stats() treats quarantined blocks as
  /// freed. 0 disables quarantine: blocks are poisoned then released.
  std::size_t quarantine_bytes = 0;
};

/// One recorded misuse (abort_on_error=false only).
struct AuditErrorRecord {
  enum class Kind { DoubleFree, SizeMismatch, ForeignPointer };
  Kind kind;
  std::string message;
};

class AuditDevice final : public Device {
 public:
  AuditDevice(std::unique_ptr<Device> inner, AuditOptions options);

  /// Logs the per-tag leak table if live allocations remain, then reclaims
  /// them (and the quarantine) so the underlying memory is not lost.
  ~AuditDevice() override;

  DeviceKind kind() const noexcept override { return inner_->kind(); }
  const std::string& name() const noexcept override { return inner_->name(); }

  void* allocate(std::size_t bytes) override;
  void deallocate(void* ptr, std::size_t bytes) noexcept override;
  MemoryStats stats() const override;
  void reset_peak() override { inner_->reset_peak(); }
  void empty_cache() override { inner_->empty_cache(); }

  // ----- auditing introspection -----

  /// Misuse reports collected so far (always empty when abort_on_error).
  std::vector<AuditErrorRecord> errors() const;

  /// Number of live (not yet freed) allocations.
  std::size_t live_count() const;

  /// Live bytes grouped by AllocTagScope tag.
  std::unordered_map<std::string, std::size_t> live_bytes_by_tag() const;

  /// Human-readable per-tag table of live allocations; empty string when
  /// nothing is live. This is what the destructor logs on leak.
  std::string leak_report() const;

  Device& inner() noexcept { return *inner_; }
  const Device* unwrap() const noexcept override { return inner_.get(); }

 private:
  struct Live {
    std::size_t bytes = 0;
    std::string tag;
  };
  struct Quarantined {
    void* ptr = nullptr;
    std::size_t bytes = 0;
  };

  void report_error(AuditErrorRecord::Kind kind, std::string message) const
      MENOS_REQUIRES(mutex_);
  void flush_quarantine_locked() MENOS_REQUIRES(mutex_);
  std::string leak_report_locked() const MENOS_REQUIRES(mutex_);

  std::unique_ptr<Device> inner_;
  AuditOptions options_;

  // Lock class assigned in the constructor via decorator_lock_name():
  // nested audit layers get depth-suffixed classes. NOLINT(mutex-name)
  mutable util::Mutex mutex_;  // NOLINT(mutex-name)
  std::unordered_map<void*, Live> live_ MENOS_GUARDED_BY(mutex_);
  // Pointers that went through a full free already; a second deallocate of
  // one of these is a double free (entries are dropped when the allocator
  // reuses the address for a new block). Bounded FIFO so an eternal server
  // does not grow it without limit.
  std::unordered_set<void*> freed_history_ MENOS_GUARDED_BY(mutex_);
  std::deque<void*> freed_order_ MENOS_GUARDED_BY(mutex_);
  std::deque<Quarantined> quarantine_ MENOS_GUARDED_BY(mutex_);
  std::size_t quarantine_total_ MENOS_GUARDED_BY(mutex_) = 0;
  std::uint64_t deferred_frees_ MENOS_GUARDED_BY(mutex_) = 0;
  mutable std::vector<AuditErrorRecord> errors_ MENOS_GUARDED_BY(mutex_);
};

/// Wrap `inner` in an auditor. The returned Device forwards all accounting
/// to `inner` (stats() adjusts for quarantined blocks).
std::unique_ptr<Device> make_audit_device(std::unique_ptr<Device> inner,
                                          AuditOptions options = {});

/// Downcast helper: the AuditDevice behind a Device&, or nullptr if the
/// device is not audited (e.g. a Release build with MENOS_AUDIT_ALLOC off).
AuditDevice* as_audit_device(Device& device) noexcept;

/// RAII caller tag for allocations: every allocate() on ANY audited device
/// performed by this thread while the scope is alive is attributed to
/// `tag` (innermost scope wins). Leak tables aggregate by this tag.
class AllocTagScope {
 public:
  explicit AllocTagScope(std::string tag);
  ~AllocTagScope();

  AllocTagScope(const AllocTagScope&) = delete;
  AllocTagScope& operator=(const AllocTagScope&) = delete;

  /// The innermost active tag on this thread, or "untagged".
  static const std::string& current() noexcept;

 private:
  std::string previous_;
};

}  // namespace menos::gpusim
