# Empty dependencies file for fig3_memory_pattern.
# This may be replaced when dependencies are built.
