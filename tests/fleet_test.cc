// fleet::Fleet end-to-end: placement policies, the router front door, live
// session migration between shards (bit-identical loss curves), and clean
// per-shard teardown accounting.
#include <gtest/gtest.h>

#include <cmath>
#include <memory>
#include <thread>
#include <vector>

#include "core/client.h"
#include "core/server.h"
#include "fleet/fleet.h"
#include "fleet/policy.h"
#include "net/transport.h"
#include "util/trace.h"

namespace menos {
namespace {

nn::TransformerConfig fleet_model() {
  nn::TransformerConfig c = nn::TransformerConfig::tiny_opt();
  c.dim = 32;
  c.n_heads = 2;
  c.ffn_hidden = 64;
  c.n_layers = 3;
  return c;
}

core::ClientOptions fleet_options(std::uint64_t adapter_seed) {
  core::ClientOptions options;
  options.finetune.model = fleet_model();
  options.finetune.batch_size = 2;
  options.finetune.seq_len = 8;
  options.finetune.adapter_seed = adapter_seed;
  options.base_seed = 42;
  options.retry.time_scale = 0.0;  // resume instantly in tests
  return options;
}

data::DataLoader fleet_loader(std::uint64_t seed) {
  data::CharTokenizer tok;
  return data::DataLoader(
      tok.encode(data::make_shakespeare_like(2000, 5).text), 2, 8, seed);
}

fleet::FleetConfig fleet_config(int shards, const std::string& policy,
                                util::EventTrace* trace) {
  fleet::FleetConfig fc;
  fc.server.base_seed = 42;
  fc.server.lease_seconds = 30.0;
  fc.server.reaper_interval_s = 0.1;
  fc.shards = shards;
  fc.gpu_bytes_per_shard = 256u << 20;
  fc.policy = policy;
  fc.trace = trace;
  return fc;
}

int count_events(const util::EventTrace& trace, const std::string& name) {
  int n = 0;
  for (const auto& e : trace.snapshot()) {
    if (e.name == name) ++n;
  }
  return n;
}

/// Retry a migration until the session is exportable (a just-finished
/// train_step may leave the session a few strand events short of idle).
bool migrate_when_idle(fleet::Fleet& fleet, std::uint64_t token, int dst) {
  for (int i = 0; i < 200; ++i) {
    if (fleet.migrate_session(token, dst)) return true;
    std::this_thread::sleep_for(std::chrono::milliseconds(5));
  }
  return false;
}

// ---------------------------------------------------------------------------
// Placement policies (pure unit tests — no servers involved).
// ---------------------------------------------------------------------------

std::vector<fleet::ShardLoad> make_loads(
    const std::vector<std::size_t>& reserved) {
  std::vector<fleet::ShardLoad> loads;
  for (std::size_t i = 0; i < reserved.size(); ++i) {
    fleet::ShardLoad l;
    l.shard = static_cast<int>(i);
    l.reserved_bytes = reserved[i];
    loads.push_back(l);
  }
  return loads;
}

TEST(PlacementPolicy, RoundRobinCycles) {
  fleet::RoundRobin rr;
  const auto loads = make_loads({100, 0, 50});
  net::FinetuneConfig config;
  for (int i = 0; i < 7; ++i) {
    EXPECT_EQ(rr.place(config, loads), i % 3);
  }
}

TEST(PlacementPolicy, LeastLoadedPicksSmallestReservation) {
  fleet::LeastLoaded ll;
  net::FinetuneConfig config;
  EXPECT_EQ(ll.place(config, make_loads({100, 40, 50})), 1);
  // Ties break by sessions, then by index.
  auto loads = make_loads({60, 60, 60});
  loads[0].sessions = 2;
  loads[2].sessions = 1;
  EXPECT_EQ(ll.place(config, loads), 1);
}

TEST(PlacementPolicy, PowerOfTwoChoicesNeverPicksTheHeavierSample) {
  fleet::PowerOfTwoChoices p2c;
  net::FinetuneConfig config;
  // With two shards both samples are always {0, 1}: the lighter one wins
  // every single time, whatever the RNG does.
  const auto loads = make_loads({500, 20});
  for (int i = 0; i < 32; ++i) {
    EXPECT_EQ(p2c.place(config, loads), 1);
  }
}

TEST(PlacementPolicy, AdapterAffinitySticksPerModelSpec) {
  fleet::AdapterAffinity affinity;
  net::FinetuneConfig a;
  a.model = fleet_model();
  net::FinetuneConfig b = a;
  b.model.n_layers = 4;  // a different architecture
  auto loads = make_loads({100, 0});
  EXPECT_EQ(affinity.place(a, loads), 1);
  // Shard 1 grew heavier, but spec `a` stays pinned there; spec `b` lands
  // least-loaded.
  loads = make_loads({0, 500});
  EXPECT_EQ(affinity.place(a, loads), 1);
  EXPECT_EQ(affinity.place(b, loads), 0);
  EXPECT_NE(fleet::AdapterAffinity::model_key(a),
            fleet::AdapterAffinity::model_key(b));
}

TEST(PlacementPolicy, FactoryKnowsEveryPolicyAndRejectsTheRest) {
  for (const char* name :
       {"round-robin", "least-loaded", "power-of-two", "adapter-affinity"}) {
    auto policy = fleet::make_policy(name);
    ASSERT_NE(policy, nullptr);
    EXPECT_STREQ(policy->name(), name);
  }
  EXPECT_THROW(fleet::make_policy("random"), InvalidArgument);
}

// ---------------------------------------------------------------------------
// Router placement distribution.
// ---------------------------------------------------------------------------

TEST(FleetPlacement, LeastLoadedSpreads128SessionsEvenly) {
  util::EventTrace trace;
  fleet::Fleet fleet(fleet_config(4, "least-loaded", &trace), fleet_model());
  net::InprocAcceptor acceptor;
  fleet.start(acceptor);

  constexpr int kSessions = 128;
  std::vector<std::unique_ptr<gpusim::DeviceManager>> cds;
  std::vector<std::unique_ptr<core::Client>> clients;
  for (int i = 0; i < kSessions; ++i) {
    cds.push_back(std::make_unique<gpusim::DeviceManager>(1, 64u << 20));
    clients.push_back(std::make_unique<core::Client>(
        fleet_options(100 + static_cast<std::uint64_t>(i)),
        acceptor.connect(), cds.back()->gpu(0)));
    clients.back()->connect();
    ASSERT_NE(clients.back()->session_token(), 0u);
  }

  const std::vector<int> placed = fleet.router().placements();
  ASSERT_EQ(placed.size(), 4u);
  int total = 0;
  int lo = placed[0];
  int hi = placed[0];
  for (int p : placed) {
    total += p;
    lo = std::min(lo, p);
    hi = std::max(hi, p);
  }
  EXPECT_EQ(total, kSessions);
  EXPECT_LE(hi - lo, 2) << "least-loaded distribution drifted";
  EXPECT_EQ(count_events(trace, "router.placed"), kSessions);

  for (auto& client : clients) client->disconnect();
  fleet.stop();
}

// ---------------------------------------------------------------------------
// Live migration.
// ---------------------------------------------------------------------------

std::vector<double> single_server_run(int rounds) {
  gpusim::DeviceManager devices(1, 256u << 20);
  core::ServerConfig config;
  config.base_seed = 42;
  config.lease_seconds = 30.0;
  core::Server server(config, devices, fleet_model());
  net::InprocAcceptor acceptor;
  server.start(acceptor);

  gpusim::DeviceManager cd(1, 256u << 20);
  core::Client client(fleet_options(21), acceptor.connect(), cd.gpu(0));
  client.connect();
  auto loader = fleet_loader(22);
  std::vector<double> losses;
  for (int i = 0; i < rounds; ++i) {
    losses.push_back(client.train_step(loader.next()).loss);
  }
  client.disconnect();
  server.stop();
  return losses;
}

// The acceptance bar: train k rounds on shard 0, migrate to shard 1
// mid-stream, finish there — every loss bit-identical to a run on one
// standalone server that never moved.
TEST(FleetMigration, LossCurveBitIdenticalAcrossAMove) {
  const int rounds = 10;
  const int move_after = 4;
  const std::vector<double> baseline = single_server_run(rounds);

  util::EventTrace trace;
  fleet::Fleet fleet(fleet_config(2, "round-robin", &trace), fleet_model());
  net::InprocAcceptor acceptor;
  fleet.start(acceptor);

  // Baselines for the teardown accounting assertions below.
  std::vector<std::size_t> idle_available;
  std::vector<std::size_t> idle_persistent;
  for (int s = 0; s < 2; ++s) {
    idle_available.push_back(fleet.shard(s).scheduler().total_available());
    idle_persistent.push_back(fleet.shard(s).persistent_gpu_bytes());
  }

  net::Dialer dialer = [&acceptor] { return acceptor.connect(); };
  gpusim::DeviceManager cd(1, 256u << 20);
  core::Client client(fleet_options(21), dialer(), cd.gpu(0), dialer);
  client.connect();
  const std::uint64_t token = client.session_token();
  ASSERT_NE(token, 0u);
  const int src = fleet.router().shard_of(token);
  ASSERT_GE(src, 0);
  const int dst = 1 - src;

  auto loader = fleet_loader(22);
  std::vector<double> losses;
  for (int i = 0; i < move_after; ++i) {
    losses.push_back(client.train_step(loader.next()).loss);
  }

  ASSERT_TRUE(migrate_when_idle(fleet, token, dst));
  EXPECT_EQ(fleet.router().shard_of(token), dst);

  // The client's next request hits a closed link, resumes through the
  // router, and lands on the target shard — training just continues.
  for (int i = move_after; i < rounds; ++i) {
    losses.push_back(client.train_step(loader.next()).loss);
  }
  EXPECT_GE(client.resumes(), 1u);
  EXPECT_GT(fleet.shard(dst).persistent_gpu_bytes(), idle_persistent[dst]);

  ASSERT_EQ(losses.size(), baseline.size());
  for (std::size_t i = 0; i < baseline.size(); ++i) {
    EXPECT_EQ(losses[i], baseline[i]) << "loss diverged at round " << i;
  }

  // Trace: the placement and the move are both on record.
  EXPECT_GE(count_events(trace, "router.placed"), 1);
  EXPECT_EQ(count_events(trace, "session.migrated"), 1);
  bool saw_pair = false;
  for (const auto& e : trace.snapshot()) {
    if (e.name == "session.migrated") {
      EXPECT_EQ(e.client_id, dst);
      EXPECT_GT(e.value, 0u);  // adapter + optimizer payload bytes
    }
    if (e.name == "migrate.src") {
      EXPECT_EQ(e.client_id, src);
    }
    if (e.name == "migrate.dst") {
      EXPECT_EQ(e.client_id, dst);
      saw_pair = true;
    }
  }
  EXPECT_TRUE(saw_pair);

  client.disconnect();
  // Ledgers: once the client leaves, every shard returns to its idle
  // accounting — all scheduler reservations released, only the preloaded
  // base model still resident on each shard's GPU.
  for (int s = 0; s < 2; ++s) {
    for (int i = 0; i < 400 && (fleet.shard(s).scheduler().total_available() !=
                                    idle_available[static_cast<std::size_t>(s)] ||
                                fleet.shard(s).persistent_gpu_bytes() !=
                                    idle_persistent[static_cast<std::size_t>(s)]);
         ++i) {
      std::this_thread::sleep_for(std::chrono::milliseconds(5));
    }
    EXPECT_EQ(fleet.shard(s).scheduler().total_available(),
              idle_available[static_cast<std::size_t>(s)])
        << "shard " << s << " leaked scheduler reservations";
    EXPECT_EQ(fleet.shard(s).persistent_gpu_bytes(),
              idle_persistent[static_cast<std::size_t>(s)])
        << "shard " << s << " leaked persistent session bytes";
  }
  fleet.stop();
  for (int s = 0; s < 2; ++s) {
    EXPECT_EQ(fleet.shard(s).session_count(), 0) << "shard " << s;
  }
}

// A busy or unknown session refuses to move, and the refusal is harmless:
// the mapping is unchanged and training continues.
TEST(FleetMigration, RefusalsLeaveTheSessionIntact) {
  util::EventTrace trace;
  fleet::Fleet fleet(fleet_config(2, "round-robin", &trace), fleet_model());
  net::InprocAcceptor acceptor;
  fleet.start(acceptor);

  net::Dialer dialer = [&acceptor] { return acceptor.connect(); };
  gpusim::DeviceManager cd(1, 256u << 20);
  core::Client client(fleet_options(31), dialer(), cd.gpu(0), dialer);
  client.connect();
  const std::uint64_t token = client.session_token();
  const int src = fleet.router().shard_of(token);
  ASSERT_GE(src, 0);

  EXPECT_FALSE(fleet.migrate_session(0xdeadbeef, 1 - src));  // unknown token
  EXPECT_FALSE(fleet.migrate_session(token, src));           // same shard
  EXPECT_EQ(fleet.router().shard_of(token), src);
  EXPECT_EQ(count_events(trace, "session.migrated"), 0);

  auto loader = fleet_loader(32);
  EXPECT_TRUE(std::isfinite(client.train_step(loader.next()).loss));
  client.disconnect();
  fleet.stop();
}

// rebalance_once moves an idle session off the most loaded shard. Place
// three sessions with round-robin (2 on shard 0, 1 on shard 1), then ask
// the fleet to even things out.
TEST(FleetMigration, RebalanceOnceMovesFromBusiestShard) {
  util::EventTrace trace;
  fleet::Fleet fleet(fleet_config(2, "round-robin", &trace), fleet_model());
  net::InprocAcceptor acceptor;
  fleet.start(acceptor);

  net::Dialer dialer = [&acceptor] { return acceptor.connect(); };
  std::vector<std::unique_ptr<gpusim::DeviceManager>> cds;
  std::vector<std::unique_ptr<core::Client>> clients;
  for (int i = 0; i < 3; ++i) {
    cds.push_back(std::make_unique<gpusim::DeviceManager>(1, 64u << 20));
    clients.push_back(std::make_unique<core::Client>(
        fleet_options(40 + static_cast<std::uint64_t>(i)), dialer(),
        cds.back()->gpu(0), dialer));
    clients.back()->connect();
  }
  EXPECT_EQ(fleet.shard(0).session_count(), 2);
  EXPECT_EQ(fleet.shard(1).session_count(), 1);

  bool moved = false;
  for (int i = 0; i < 200 && !moved; ++i) {
    moved = fleet.rebalance_once();
    if (!moved) std::this_thread::sleep_for(std::chrono::milliseconds(5));
  }
  ASSERT_TRUE(moved);
  EXPECT_EQ(count_events(trace, "session.migrated"), 1);

  // Every client still trains to a finite loss wherever it ended up.
  for (int i = 0; i < 3; ++i) {
    auto loader = fleet_loader(50 + static_cast<std::uint64_t>(i));
    EXPECT_TRUE(
        std::isfinite(clients[static_cast<std::size_t>(i)]
                          ->train_step(loader.next())
                          .loss));
  }
  for (auto& client : clients) client->disconnect();
  fleet.stop();
}

}  // namespace
}  // namespace menos
