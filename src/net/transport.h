// Transport abstraction between clients and the Menos server.
//
// Two implementations share the Connection interface:
//  * In-process channels with an optional WAN conditioner (latency +
//    bandwidth model calibrated to the paper's Toronto<->Vancouver link) —
//    used by tests, benches and the multi-client examples.
//  * Real TCP over POSIX sockets with length-prefixed CRC-checked frames —
//    used by the tcp_demo example and the transport integration tests.
//
// Per the codebase error-handling policy, connection teardown is part of
// normal operation and is reported via return values (send -> bool,
// receive -> nullopt), while data corruption is exceptional and throws
// ProtocolError.
#pragma once

#include <cstdint>
#include <functional>
#include <memory>
#include <optional>
#include <utility>

#include "net/message.h"
#include "util/check.h"

namespace menos::net {

/// Result of a non-blocking try_receive() probe.
enum class RecvStatus : std::uint8_t {
  Frame,   ///< a complete message was produced
  Empty,   ///< no complete frame buffered right now; link still up
  Closed,  ///< peer closed (or link error); no more frames will arrive
};

class Connection {
 public:
  virtual ~Connection() = default;

  /// Deliver a message to the peer. Returns false if the connection is
  /// closed (message dropped).
  virtual bool send(const Message& message) = 0;

  /// Block until a message arrives; nullopt once the peer closed and the
  /// inbound queue drained — or, when a receive timeout is set, once that
  /// much time passes without a frame. Throws ProtocolError on corrupted
  /// input.
  virtual std::optional<Message> receive() = 0;

  /// Bound future receive() calls to `seconds` (<= 0 restores blocking
  /// forever). A timed-out receive returns nullopt, which callers treat as
  /// a lost link; transports without timeout support ignore this.
  virtual void set_receive_timeout(double seconds) { (void)seconds; }

  virtual void close() = 0;

  /// Bytes sent so far on this endpoint (wire-level, for comm accounting).
  virtual std::uint64_t bytes_sent() const = 0;

  // ---- Non-blocking event-driven interface (net::Poller) -----------------
  //
  // The event-driven serving core never blocks in receive(); it waits for
  // readiness (set_ready_hook / poll_fd) and then drains frames with
  // try_receive. Transports that predate the refactor may not support it —
  // the default throws so a misuse is loud, not a silent hang.

  /// Non-blocking receive: *out is filled only when RecvStatus::Frame is
  /// returned. Throws ProtocolError on corrupted input (same contract as
  /// receive()). Never blocks and never honours the receive timeout —
  /// timeouts are the Poller's job in event-driven mode.
  virtual RecvStatus try_receive(Message* out) {
    (void)out;
    throw StateError("this Connection does not support try_receive()");
  }

  /// Install a hook invoked whenever the connection *may* have become
  /// readable (frame arrival or close). Edge-style and allowed to fire
  /// spuriously; the consumer must drain with try_receive until Empty.
  /// Pass nullptr to clear; clearing synchronizes with in-flight hook
  /// invocations (after it returns, the old hook will not be entered).
  /// The default is a no-op for transports polled by fd instead.
  virtual void set_ready_hook(std::function<void()> hook) { (void)hook; }

  /// File descriptor to poll(2) for readability, or -1 when the transport
  /// signals readiness through set_ready_hook instead. At most one reader
  /// may consume readiness from the fd at a time.
  virtual int poll_fd() const { return -1; }
};

/// Factory for (re)establishing a client's transport — the reconnect hook
/// used by core::Client's retry loop. Returns nullptr on failure.
using Dialer = std::function<std::unique_ptr<Connection>()>;

/// WAN conditioner for the in-process transport. Each send is delayed by
/// latency + bytes/bandwidth, scaled by time_scale so tests can run the
/// same code path at zero cost (time_scale = 0 -> no sleeping, accounting
/// only).
struct NetworkConditioner {
  double latency_s = 0.0;
  double bandwidth_bytes_per_s = 0.0;  ///< 0 = infinite
  double time_scale = 1.0;

  double transfer_seconds(std::size_t bytes) const noexcept {
    double s = latency_s;
    if (bandwidth_bytes_per_s > 0.0) {
      s += static_cast<double>(bytes) / bandwidth_bytes_per_s;
    }
    return s;
  }
};

/// Create a connected pair of in-process endpoints.
std::pair<std::unique_ptr<Connection>, std::unique_ptr<Connection>>
make_inproc_pair(const NetworkConditioner& conditioner = {});

/// Asymmetric variant: `a_to_b` shapes the first endpoint's sends, `b_to_a`
/// the second's. Lets a bench model an uplink-heavy WAN (client pays the
/// latency in its own send) while the return path stays free, so a
/// single-core server is never the one sleeping.
std::pair<std::unique_ptr<Connection>, std::unique_ptr<Connection>>
make_inproc_pair(const NetworkConditioner& a_to_b,
                 const NetworkConditioner& b_to_a);

/// Wrap `inner` so the already-consumed `first` message is re-delivered by
/// the first receive()/try_receive() before delegating. Used by the fleet
/// router, which must read a connection's opening frame to *place* it and
/// then hand the intact stream to the chosen shard. The wrapper reports
/// poll_fd()/set_ready_hook from `inner` unchanged; the Poller's latched
/// initial signal guarantees the buffered frame is drained even if the
/// transport never signals again.
std::unique_ptr<Connection> make_prefixed(std::shared_ptr<Connection> inner,
                                          Message first);

/// Source of inbound connections for a server. accept() blocks; returns
/// nullptr once closed.
class Acceptor {
 public:
  virtual ~Acceptor() = default;
  virtual std::unique_ptr<Connection> accept() = 0;
  virtual void close() = 0;
};

// Per-connection link conditioning (net/link.h). Declared here so the
// acceptor can mint heterogeneous links without transport.h depending on
// the full link machinery.
struct LinkProfile;
class LinkConditioner;

/// In-process acceptor: connect() mints a connected pair, hands the server
/// end to the accept loop and returns the client end.
class InprocAcceptor final : public Acceptor {
 public:
  explicit InprocAcceptor(const NetworkConditioner& conditioner = {});
  /// Asymmetric links: `uplink` shapes client->server sends, `downlink`
  /// server->client (see the two-conditioner make_inproc_pair).
  InprocAcceptor(const NetworkConditioner& uplink,
                 const NetworkConditioner& downlink);
  ~InprocAcceptor() override;

  std::unique_ptr<Connection> connect();
  /// Heterogeneous variant: mint an UNconditioned pair (the acceptor-wide
  /// conditioners do not apply) and shape both ends with a fresh
  /// LinkConditioner for `profile` — each connection gets its own link,
  /// not the acceptor's. `conditioner_out`, when non-null, receives the
  /// shared conditioner so callers can read delay logs / loss stats.
  std::unique_ptr<Connection> connect(
      const LinkProfile& profile,
      std::shared_ptr<LinkConditioner>* conditioner_out = nullptr);
  std::unique_ptr<Connection> accept() override;
  void close() override;

 private:
  struct State;
  std::shared_ptr<State> state_;
};

/// TCP listener. accept() blocks; returns nullptr after close().
class TcpListener : public Acceptor {
 public:
  virtual int port() const = 0;
};

/// Bind on 127.0.0.1. Port 0 picks a free port (read it back via port()).
std::unique_ptr<TcpListener> tcp_listen(int port);

/// Connect to a listener. Returns nullptr on refusal.
std::unique_ptr<Connection> tcp_connect(const std::string& host, int port);

}  // namespace menos::net
