file(REMOVE_RECURSE
  "CMakeFiles/menos_core.dir/checkpoint.cc.o"
  "CMakeFiles/menos_core.dir/checkpoint.cc.o.d"
  "CMakeFiles/menos_core.dir/client.cc.o"
  "CMakeFiles/menos_core.dir/client.cc.o.d"
  "CMakeFiles/menos_core.dir/parameter_store.cc.o"
  "CMakeFiles/menos_core.dir/parameter_store.cc.o.d"
  "CMakeFiles/menos_core.dir/runtime.cc.o"
  "CMakeFiles/menos_core.dir/runtime.cc.o.d"
  "CMakeFiles/menos_core.dir/server.cc.o"
  "CMakeFiles/menos_core.dir/server.cc.o.d"
  "CMakeFiles/menos_core.dir/session.cc.o"
  "CMakeFiles/menos_core.dir/session.cc.o.d"
  "libmenos_core.a"
  "libmenos_core.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/menos_core.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
