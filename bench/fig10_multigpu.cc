// Figure 10: fine-tuning time with a multi-GPU server and scaling CPU-only
// clients (Llama-2-7B). The dashed baseline is 2 GPU clients.
#include "bench_common.h"

using namespace menos;

int main() {
  bench::print_header(
      "Fig 10 — multi-GPU server with CPU-only clients (Llama 2)",
      "2 CPU clients: 5.3 s (vs 4.5 s for GPU clients). 10 clients: 11.2 s "
      "on 1 GPU, 6.6 s on 4 GPUs");

  // Dashed baseline: 2 clients with their own GPUs.
  auto baseline = sim::run_split_finetune(bench::make_config(
      sim::ModelSpec::llama2_7b(), core::ServingMode::MenosOnDemand, 2));
  std::printf("baseline (2 GPU clients): %.2f s/iter (paper: ~4.5 s)\n\n",
              baseline.avg_iteration_s);

  std::printf("%-8s", "clients");
  for (int gpus : {1, 2, 4}) std::printf("  %d GPU%s (s)", gpus, gpus > 1 ? "s" : " ");
  std::printf("\n");
  for (int clients : {2, 4, 6, 8, 10}) {
    std::printf("%-8d", clients);
    for (int gpus : {1, 2, 4}) {
      sim::SimConfig c = bench::make_config(
          sim::ModelSpec::llama2_7b(), core::ServingMode::MenosOnDemand,
          clients);
      c.cpu_clients = true;
      c.num_gpus = gpus;
      auto r = sim::run_split_finetune(c);
      std::printf("  %-10s", bench::cell(r, r.avg_iteration_s).c_str());
    }
    std::printf("\n");
  }
  std::printf(
      "\nShape check: CPU clients only slightly slower than GPU clients "
      "(most layers are on the server); 1-GPU times grow ~linearly with "
      "clients once memory swaps, and extra GPUs restore the baseline.\n");
  return 0;
}
