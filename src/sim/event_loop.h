// Minimal deterministic discrete-event loop over virtual time.
//
// Events fire in (time, insertion order) order, so simulations are exactly
// reproducible. All paper-scale timing results (Figs 6/7/10, Tables 1-3)
// come from this loop; wall-clock time never enters them.
#pragma once

#include <cstdint>
#include <functional>
#include <queue>
#include <vector>

#include "util/check.h"

namespace menos::sim {

class EventLoop {
 public:
  using Action = std::function<void()>;

  double now() const noexcept { return now_; }

  /// Schedule `action` to run `delay` seconds from now (>= 0).
  void schedule(double delay, Action action) {
    MENOS_CHECK_MSG(delay >= 0.0, "cannot schedule into the past");
    queue_.push(Event{now_ + delay, next_seq_++, std::move(action)});
  }

  /// Run until no events remain. Returns the final virtual time.
  double run() {
    while (!queue_.empty()) step();
    return now_;
  }

  /// Run until the queue empties or virtual time would pass `deadline`.
  double run_until(double deadline) {
    while (!queue_.empty() && queue_.top().time <= deadline) step();
    if (now_ < deadline) now_ = deadline;
    return now_;
  }

  bool idle() const noexcept { return queue_.empty(); }
  std::size_t pending() const noexcept { return queue_.size(); }

 private:
  struct Event {
    double time;
    std::uint64_t seq;
    Action action;

    bool operator>(const Event& other) const noexcept {
      if (time != other.time) return time > other.time;
      return seq > other.seq;
    }
  };

  void step() {
    // priority_queue::top is const; the action must be moved out via the
    // usual const_cast-free route: copy the handle, then pop.
    Event event = queue_.top();
    queue_.pop();
    MENOS_CHECK_MSG(event.time + 1e-12 >= now_, "event loop time went backwards");
    now_ = event.time;
    event.action();
  }

  std::priority_queue<Event, std::vector<Event>, std::greater<Event>> queue_;
  double now_ = 0.0;
  std::uint64_t next_seq_ = 0;
};

}  // namespace menos::sim
