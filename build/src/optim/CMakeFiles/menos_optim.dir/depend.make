# Empty dependencies file for menos_optim.
# This may be replaced when dependencies are built.
