#include "net/message.h"

#include <cmath>

#include "net/wire.h"
#include "quant/act_codec.h"
#include "util/crc32.h"

namespace menos::net {

const char* message_type_name(MessageType type) noexcept {
  switch (type) {
    case MessageType::Hello:          return "Hello";
    case MessageType::HelloAck:       return "HelloAck";
    case MessageType::Forward:        return "Forward";
    case MessageType::ForwardResult:  return "ForwardResult";
    case MessageType::Backward:       return "Backward";
    case MessageType::BackwardResult: return "BackwardResult";
    case MessageType::Bye:            return "Bye";
    case MessageType::Error:          return "Error";
    case MessageType::FetchAdapter:   return "FetchAdapter";
    case MessageType::AdapterBlob:    return "AdapterBlob";
    case MessageType::PushAdapter:    return "PushAdapter";
    case MessageType::PushAck:        return "PushAck";
    case MessageType::Heartbeat:      return "Heartbeat";
    case MessageType::HeartbeatAck:   return "HeartbeatAck";
    case MessageType::ResumeSession:  return "ResumeSession";
    case MessageType::ResumeAck:      return "ResumeAck";
  }
  return "?";
}

const char* activation_codec_name(ActivationCodec codec) noexcept {
  switch (codec) {
    case ActivationCodec::None: return "none";
    case ActivationCodec::Int8: return "int8";
  }
  return "?";
}

Message Message::hello(FinetuneConfig config) {
  Message m;
  m.type = MessageType::Hello;
  m.config = std::move(config);
  return m;
}

Message Message::hello_ack(std::uint64_t forward_bytes,
                           std::uint64_t backward_bytes,
                           std::uint64_t session_token,
                           double lease_seconds) {
  Message m;
  m.type = MessageType::HelloAck;
  m.forward_bytes = forward_bytes;
  m.backward_bytes = backward_bytes;
  m.session_token = session_token;
  m.lease_seconds = lease_seconds;
  return m;
}

Message Message::forward(WireTensor tensor, std::uint64_t iteration) {
  Message m;
  m.type = MessageType::Forward;
  m.tensor = std::move(tensor);
  m.iteration = iteration;
  return m;
}

Message Message::forward_result(WireTensor tensor, std::uint64_t iteration) {
  Message m;
  m.type = MessageType::ForwardResult;
  m.tensor = std::move(tensor);
  m.iteration = iteration;
  return m;
}

Message Message::backward(WireTensor tensor, std::uint64_t iteration) {
  Message m;
  m.type = MessageType::Backward;
  m.tensor = std::move(tensor);
  m.iteration = iteration;
  return m;
}

Message Message::backward_result(WireTensor tensor, std::uint64_t iteration) {
  Message m;
  m.type = MessageType::BackwardResult;
  m.tensor = std::move(tensor);
  m.iteration = iteration;
  return m;
}

Message Message::bye() {
  Message m;
  m.type = MessageType::Bye;
  return m;
}

Message Message::error(std::string text) {
  Message m;
  m.type = MessageType::Error;
  m.text = std::move(text);
  return m;
}

Message Message::fetch_adapter() {
  Message m;
  m.type = MessageType::FetchAdapter;
  return m;
}

Message Message::adapter_blob(std::vector<std::uint8_t> blob) {
  Message m;
  m.type = MessageType::AdapterBlob;
  m.blob = std::move(blob);
  return m;
}

Message Message::push_adapter(std::vector<std::uint8_t> blob) {
  Message m;
  m.type = MessageType::PushAdapter;
  m.blob = std::move(blob);
  return m;
}

Message Message::push_ack() {
  Message m;
  m.type = MessageType::PushAck;
  return m;
}

Message Message::heartbeat() {
  Message m;
  m.type = MessageType::Heartbeat;
  return m;
}

Message Message::heartbeat_ack() {
  Message m;
  m.type = MessageType::HeartbeatAck;
  return m;
}

Message Message::resume_session(std::uint64_t session_token) {
  Message m;
  m.type = MessageType::ResumeSession;
  m.session_token = session_token;
  return m;
}

Message Message::resume_ack(std::uint64_t session_token,
                            std::uint64_t iteration) {
  Message m;
  m.type = MessageType::ResumeAck;
  m.session_token = session_token;
  m.iteration = iteration;
  return m;
}

namespace {

void put_tensor(Writer& w, const WireTensor& t, ActivationCodec codec) {
  // Activation-sized payloads dominate the frame; size the buffer once so
  // the per-dimension and per-element appends never reallocate.
  w.reserve(8 + t.shape.size() * 8 + 1 + 8 + t.data.size() * sizeof(float));
  w.put_u64(t.shape.size());
  for (std::int64_t d : t.shape) w.put_i64(d);
  w.put_u8(static_cast<std::uint8_t>(codec));
  switch (codec) {
    case ActivationCodec::None:
      w.put_f32_array(t.data.data(), t.data.size());
      break;
    case ActivationCodec::Int8: {
      // Rows of the last dimension, the same granularity as
      // quant::Scheme::Int8Rowwise. numel is a product of the dims, so the
      // division is exact whenever cols > 0; a zero-sized tensor encodes as
      // zero rows.
      const std::size_t cols =
          t.shape.empty() ? 0 : static_cast<std::size_t>(t.shape.back());
      const std::size_t rows = cols > 0 ? t.data.size() / cols : 0;
      std::vector<float> scales;
      std::vector<std::uint8_t> codes;
      quant::int8_rowwise_encode(t.data.data(), rows, cols, scales, codes);
      w.put_f32_array(scales.data(), scales.size());
      w.put_bytes(codes);
      break;
    }
  }
}

WireTensor get_tensor(Reader& r, ActivationCodec& codec_out) {
  WireTensor t;
  const std::uint64_t ndim = r.get_u64();
  if (ndim > 8) throw ProtocolError("wire tensor rank too large");
  t.shape.resize(ndim);
  std::int64_t numel = 1;
  for (auto& d : t.shape) {
    d = r.get_i64();
    if (d < 0) throw ProtocolError("negative wire tensor dimension");
    numel *= d;
  }
  const std::uint8_t raw_codec = r.get_u8();
  if (raw_codec > 1) throw ProtocolError("unknown activation codec on wire");
  codec_out = static_cast<ActivationCodec>(raw_codec);
  switch (static_cast<ActivationCodec>(raw_codec)) {
    case ActivationCodec::None:
      t.data = r.get_f32_array();
      if (static_cast<std::int64_t>(t.data.size()) != numel) {
        throw ProtocolError("wire tensor payload does not match shape");
      }
      break;
    case ActivationCodec::Int8: {
      const std::size_t cols =
          t.shape.empty() ? 0 : static_cast<std::size_t>(t.shape.back());
      const std::size_t rows =
          cols > 0 ? static_cast<std::size_t>(numel) / cols : 0;
      const std::vector<float> scales = r.get_f32_array();
      const std::vector<std::uint8_t> codes = r.get_bytes();
      if (scales.size() != rows || codes.size() != rows * cols ||
          static_cast<std::int64_t>(rows * cols) != numel) {
        throw ProtocolError("int8 wire tensor payload does not match shape");
      }
      t.data.resize(rows * cols);
      quant::int8_rowwise_decode(scales.data(), codes.data(), rows, cols,
                                 t.data.data());
      break;
    }
  }
  return t;
}

void put_config(Writer& w, const FinetuneConfig& c) {
  w.put_string(c.client_name);
  w.put_u8(static_cast<std::uint8_t>(c.model.family));
  w.put_i64(c.model.vocab_size);
  w.put_i64(c.model.dim);
  w.put_i64(c.model.n_layers);
  w.put_i64(c.model.n_heads);
  w.put_i64(c.model.n_kv_heads);
  w.put_i64(c.model.ffn_hidden);
  w.put_i64(c.model.max_seq);
  w.put_i64(c.split.front_blocks);
  w.put_i64(c.split.back_blocks);
  w.put_u8(static_cast<std::uint8_t>(c.adapter.type));
  w.put_i64(c.adapter.rank);
  w.put_f32(c.adapter.alpha);
  w.put_u8(c.adapter.target_q ? 1 : 0);
  w.put_u8(c.adapter.target_v ? 1 : 0);
  w.put_u8(c.adapter.target_lm_head ? 1 : 0);
  w.put_i64(c.adapter.prefix_len);
  w.put_u8(static_cast<std::uint8_t>(c.optimizer));
  w.put_f32(c.lr);
  w.put_i64(c.batch_size);
  w.put_i64(c.seq_len);
  w.put_u64(c.adapter_seed);
  w.put_f64(c.profile.compute_scale);
  w.put_i64(c.profile.cut_depth);
  w.put_u8(c.profile.frozen_client_half ? 1 : 0);
  w.put_u8(static_cast<std::uint8_t>(c.profile.codec));
  w.put_f64(c.profile.uplink_bytes_per_s);
  w.put_f64(c.profile.downlink_bytes_per_s);
  w.put_f64(c.profile.link_latency_s);
}

FinetuneConfig get_config(Reader& r) {
  FinetuneConfig c;
  c.client_name = r.get_string();
  const std::uint8_t family = r.get_u8();
  if (family > 1) throw ProtocolError("unknown model family on wire");
  c.model.family = static_cast<nn::ModelFamily>(family);
  c.model.vocab_size = r.get_i64();
  c.model.dim = r.get_i64();
  c.model.n_layers = static_cast<int>(r.get_i64());
  c.model.n_heads = static_cast<int>(r.get_i64());
  c.model.n_kv_heads = static_cast<int>(r.get_i64());
  c.model.ffn_hidden = r.get_i64();
  c.model.max_seq = r.get_i64();
  c.split.front_blocks = static_cast<int>(r.get_i64());
  c.split.back_blocks = static_cast<int>(r.get_i64());
  const std::uint8_t adapter = r.get_u8();
  if (adapter > 3) throw ProtocolError("unknown adapter type on wire");
  c.adapter.type = static_cast<nn::AdapterType>(adapter);
  c.adapter.rank = static_cast<int>(r.get_i64());
  c.adapter.alpha = r.get_f32();
  c.adapter.target_q = r.get_u8() != 0;
  c.adapter.target_v = r.get_u8() != 0;
  c.adapter.target_lm_head = r.get_u8() != 0;
  c.adapter.prefix_len = static_cast<int>(r.get_i64());
  const std::uint8_t opt = r.get_u8();
  if (opt > 2) throw ProtocolError("unknown optimizer kind on wire");
  c.optimizer = static_cast<optim::OptimizerKind>(opt);
  c.lr = r.get_f32();
  c.batch_size = r.get_i64();
  c.seq_len = r.get_i64();
  c.adapter_seed = r.get_u64();
  c.profile.compute_scale = r.get_f64();
  if (!std::isfinite(c.profile.compute_scale) ||
      c.profile.compute_scale <= 0.0) {
    throw ProtocolError("client profile compute_scale must be finite > 0");
  }
  c.profile.cut_depth = static_cast<int>(r.get_i64());
  if (c.profile.cut_depth < 0) {
    throw ProtocolError("client profile cut_depth must be >= 0");
  }
  c.profile.frozen_client_half = r.get_u8() != 0;
  const std::uint8_t codec = r.get_u8();
  if (codec > 1) throw ProtocolError("unknown activation codec on wire");
  c.profile.codec = static_cast<ActivationCodec>(codec);
  c.profile.uplink_bytes_per_s = r.get_f64();
  c.profile.downlink_bytes_per_s = r.get_f64();
  c.profile.link_latency_s = r.get_f64();
  if (!std::isfinite(c.profile.uplink_bytes_per_s) ||
      c.profile.uplink_bytes_per_s < 0.0 ||
      !std::isfinite(c.profile.downlink_bytes_per_s) ||
      c.profile.downlink_bytes_per_s < 0.0 ||
      !std::isfinite(c.profile.link_latency_s) ||
      c.profile.link_latency_s < 0.0) {
    throw ProtocolError("client profile link hints must be finite >= 0");
  }
  return c;
}

}  // namespace

std::vector<std::uint8_t> encode_message(const Message& message) {
  Writer w;
  w.put_u8(static_cast<std::uint8_t>(message.type));
  switch (message.type) {
    case MessageType::Hello:
      put_config(w, message.config);
      break;
    case MessageType::HelloAck:
      w.put_u64(message.forward_bytes);
      w.put_u64(message.backward_bytes);
      w.put_u64(message.session_token);
      w.put_f64(message.lease_seconds);
      break;
    case MessageType::Forward:
    case MessageType::ForwardResult:
    case MessageType::Backward:
    case MessageType::BackwardResult:
      w.put_u64(message.iteration);
      put_tensor(w, message.tensor, message.tensor_codec);
      w.put_f64(message.compute_seconds);
      w.put_f64(message.schedule_wait_seconds);
      w.put_u8(message.eval_only ? 1 : 0);
      w.put_u8(message.defer_update ? 1 : 0);
      w.put_f32(message.lr_override);
      break;
    case MessageType::Bye:
    case MessageType::FetchAdapter:
    case MessageType::PushAck:
    case MessageType::Heartbeat:
    case MessageType::HeartbeatAck:
      break;
    case MessageType::Error:
      w.put_string(message.text);
      break;
    case MessageType::AdapterBlob:
    case MessageType::PushAdapter:
      w.put_bytes(message.blob);
      break;
    case MessageType::ResumeSession:
      w.put_u64(message.session_token);
      break;
    case MessageType::ResumeAck:
      w.put_u64(message.session_token);
      w.put_u64(message.iteration);
      break;
  }
  return w.take();
}

Message decode_message(const std::uint8_t* data, std::size_t size) {
  Reader r(data, size);
  const std::uint8_t raw_type = r.get_u8();
  if (raw_type < 1 || raw_type > 16) {
    throw ProtocolError("unknown message type " + std::to_string(raw_type));
  }
  Message m;
  m.type = static_cast<MessageType>(raw_type);
  switch (m.type) {
    case MessageType::Hello:
      m.config = get_config(r);
      break;
    case MessageType::HelloAck:
      m.forward_bytes = r.get_u64();
      m.backward_bytes = r.get_u64();
      m.session_token = r.get_u64();
      m.lease_seconds = r.get_f64();
      break;
    case MessageType::Forward:
    case MessageType::ForwardResult:
    case MessageType::Backward:
    case MessageType::BackwardResult:
      m.iteration = r.get_u64();
      m.tensor = get_tensor(r, m.tensor_codec);
      m.compute_seconds = r.get_f64();
      m.schedule_wait_seconds = r.get_f64();
      m.eval_only = r.get_u8() != 0;
      m.defer_update = r.get_u8() != 0;
      m.lr_override = r.get_f32();
      break;
    case MessageType::Bye:
    case MessageType::FetchAdapter:
    case MessageType::PushAck:
    case MessageType::Heartbeat:
    case MessageType::HeartbeatAck:
      break;
    case MessageType::Error:
      m.text = r.get_string();
      break;
    case MessageType::AdapterBlob:
    case MessageType::PushAdapter:
      m.blob = r.get_bytes();
      break;
    case MessageType::ResumeSession:
      m.session_token = r.get_u64();
      break;
    case MessageType::ResumeAck:
      m.session_token = r.get_u64();
      m.iteration = r.get_u64();
      break;
  }
  if (!r.exhausted()) {
    throw ProtocolError("trailing bytes after message payload");
  }
  return m;
}

std::vector<std::uint8_t> frame_message(const Message& message) {
  const std::vector<std::uint8_t> payload = encode_message(message);
  Writer w;
  w.reserve(kFrameHeaderBytes + payload.size() + kFrameTrailerBytes);
  w.put_u32(kFrameMagic);
  w.put_u64(payload.size());
  std::vector<std::uint8_t> frame = w.take();
  frame.insert(frame.end(), payload.begin(), payload.end());
  const std::uint32_t crc = util::crc32(payload.data(), payload.size());
  frame.push_back(static_cast<std::uint8_t>(crc));
  frame.push_back(static_cast<std::uint8_t>(crc >> 8));
  frame.push_back(static_cast<std::uint8_t>(crc >> 16));
  frame.push_back(static_cast<std::uint8_t>(crc >> 24));
  return frame;
}

Message parse_frame(const std::uint8_t* data, std::size_t size) {
  if (size < kFrameHeaderBytes + kFrameTrailerBytes) {
    throw ProtocolError("truncated frame");
  }
  Reader header(data, kFrameHeaderBytes);
  if (header.get_u32() != kFrameMagic) {
    throw ProtocolError("bad frame magic");
  }
  const std::uint64_t payload_len = header.get_u64();
  if (payload_len > kMaxFramePayload) {
    throw ProtocolError("frame payload exceeds limit");
  }
  if (size != kFrameHeaderBytes + payload_len + kFrameTrailerBytes) {
    throw ProtocolError("frame size mismatch");
  }
  const std::uint8_t* payload = data + kFrameHeaderBytes;
  const std::uint8_t* trailer = payload + payload_len;
  const std::uint32_t expected =
      static_cast<std::uint32_t>(trailer[0]) |
      static_cast<std::uint32_t>(trailer[1]) << 8 |
      static_cast<std::uint32_t>(trailer[2]) << 16 |
      static_cast<std::uint32_t>(trailer[3]) << 24;
  if (util::crc32(payload, payload_len) != expected) {
    throw ProtocolError("frame CRC mismatch");
  }
  return decode_message(payload, payload_len);
}

}  // namespace menos::net
