#include "check/lock_order.h"

#include <cstdio>
#include <cstdlib>
// The detector cannot be built on the instrumented util::Mutex it is
// checking (every acquisition would recurse into the detector), so its
// internal registry lock is the one sanctioned raw std::mutex outside
// src/util/mutex.h.
#include <mutex>  // NOLINT(raw-mutex)
#include <sstream>
#include <unordered_map>

namespace menos::check {
namespace {

struct Edge {
  /// Hold-stack at the moment this edge was first recorded.
  std::string stack;
  bool reported = false;
};

}  // namespace

struct LockClass {
  std::string name;
  int rank = 0;
  /// Outgoing lock-order edges: this class was held while the key class
  /// was acquired. Guarded by Registry::mutex.
  std::unordered_map<const LockClass*, Edge> succ;
};

namespace {

struct Held {
  const LockClass* cls;
  const void* instance;
};

// The calling thread's stack of held lock classes, in acquisition order.
// Deliberately a trivially-destructible POD: static-storage objects
// (ThreadPool::instance(), the logging mutex) take named locks in their
// destructors, which run AFTER thread_locals with destructors are gone —
// a plain array has no destructor, so it stays valid through teardown.
struct HeldStack {
  static constexpr int kMax = 64;
  Held items[kMax];
  int size;
  /// Acquisitions past kMax are counted, not tracked (never happens in
  /// practice; 64 simultaneously-held locks would be its own bug).
  int overflow;
};
thread_local HeldStack t_held;

struct Registry {
  // Internal lock; see the <mutex> include note. NOLINT(raw-mutex)
  std::mutex mutex;  // NOLINT(raw-mutex)
  std::unordered_map<std::string, LockClass*> classes;
  std::function<void(const LockOrderReport&)> handler;
  std::uint64_t report_count = 0;
};

// Leaked singleton: mutexes with static storage duration (e.g. the logging
// emit lock) intern during static init and note acquisitions during static
// teardown, so the registry must outlive every other static.
Registry& registry() {
  static Registry* r = new Registry();
  return *r;
}

void default_report(const LockOrderReport& report) {
  // Mirrors detail::dcheck_failure: straight to stderr so the diagnostic
  // survives even if the logging subsystem is mid-teardown.
  std::fprintf(stderr, "%s", report.to_string().c_str());  // NOLINT(iostream-side-channel)
  std::fflush(stderr);
  std::abort();
}

void push_held(const LockClass* cls, const void* instance) {
  if (t_held.size < HeldStack::kMax) {
    t_held.items[t_held.size] = {cls, instance};
    ++t_held.size;
  } else {
    ++t_held.overflow;
  }
}

std::string held_stack_string(const LockClass* acquiring) {
  std::ostringstream os;
  os << "held [";
  for (int i = 0; i < t_held.size; ++i) {
    if (i != 0) os << " -> ";
    os << t_held.items[i].cls->name;
  }
  os << "] acquiring " << acquiring->name;
  return os.str();
}

/// Fire a report through the installed handler (default: print + abort).
/// The handler runs without the registry lock so a collecting handler may
/// allocate freely; `registry().mutex` must NOT be held by the caller.
void fire(LockOrderReport report) {
  std::function<void(const LockOrderReport&)> handler;
  {
    std::lock_guard<std::mutex> lock(registry().mutex);  // NOLINT(raw-mutex)
    ++registry().report_count;
    handler = registry().handler;
  }
  if (handler) {
    handler(report);
  } else {
    default_report(report);
  }
}

/// Depth-first search for a path `from` => `to` over the edge graph.
/// Returns the path (from ... to) or empty. Registry lock held.
std::vector<const LockClass*> find_path(const LockClass* from,
                                        const LockClass* to) {
  std::vector<const LockClass*> path;
  std::vector<const LockClass*> visited;
  std::function<bool(const LockClass*)> dfs = [&](const LockClass* node) {
    for (const LockClass* seen : visited) {
      if (seen == node) return false;
    }
    visited.push_back(node);
    path.push_back(node);
    if (node == to) return true;
    for (const auto& [next, edge] : node->succ) {
      if (dfs(next)) return true;
    }
    path.pop_back();
    return false;
  };
  dfs(from);
  return path;
}

}  // namespace

std::string LockOrderReport::to_string() const {
  std::ostringstream os;
  os << "menos::check lock-order violation (" << kind << "): " << summary
     << '\n';
  if (!first_stack.empty()) {
    os << "  first direction:  " << first_stack << '\n';
  }
  if (!second_stack.empty()) {
    os << "  this acquisition: " << second_stack << '\n';
  }
  return os.str();
}

LockClass* intern_lock_class(const char* name, int rank) {
  bool conflict = false;
  LockClass* cls = nullptr;
  int prior_rank = 0;
  {
    std::lock_guard<std::mutex> lock(registry().mutex);  // NOLINT(raw-mutex)
    auto it = registry().classes.find(name);
    if (it != registry().classes.end()) {
      cls = it->second;
      if (rank != 0 && cls->rank != 0 && cls->rank != rank) {
        conflict = true;
        prior_rank = cls->rank;
      } else if (cls->rank == 0) {
        cls->rank = rank;
      }
    } else {
      cls = new LockClass();  // interned forever, like the registry
      cls->name = name;
      cls->rank = rank;
      registry().classes.emplace(cls->name, cls);
    }
  }
  if (conflict) {
    LockOrderReport report;
    report.kind = "rank-conflict";
    std::ostringstream os;
    os << "lock class '" << name << "' interned with rank " << rank
       << " but already registered with rank " << prior_rank;
    report.summary = os.str();
    fire(std::move(report));
  }
  return cls;
}

const char* lock_class_name(const LockClass* cls) noexcept {
  return cls->name.c_str();
}

int lock_class_rank(const LockClass* cls) noexcept { return cls->rank; }

void note_acquire(const LockClass* cls, const void* instance) {
  // Recursive self-deadlock: this exact mutex is already held by us. The
  // underlying std::mutex would deadlock (or worse, UB) on the lock()
  // about to happen, so this must be reported unconditionally.
  for (int i = 0; i < t_held.size; ++i) {
    if (t_held.items[i].instance == instance) {
      LockOrderReport report;
      report.kind = "recursive";
      report.summary =
          "recursive acquisition of mutex '" + cls->name + "' (guaranteed deadlock)";
      report.second_stack = held_stack_string(cls);
      fire(std::move(report));
      push_held(cls, instance);
      return;
    }
  }

  // Rank discipline: a nonzero-ranked class may not be acquired below the
  // highest nonzero rank already held (docs/ANALYSIS.md). Catches an
  // inversion on its FIRST execution, before the reverse order ever runs.
  if (cls->rank != 0) {
    const LockClass* worst = nullptr;
    for (int i = 0; i < t_held.size; ++i) {
      const LockClass* held_cls = t_held.items[i].cls;
      if (held_cls->rank != 0 &&
          (worst == nullptr || held_cls->rank > worst->rank)) {
        worst = held_cls;
      }
    }
    if (worst != nullptr && cls->rank < worst->rank) {
      LockOrderReport report;
      report.kind = "rank";
      std::ostringstream os;
      os << "acquired '" << cls->name << "' (rank " << cls->rank
         << ") while holding '" << worst->name << "' (rank " << worst->rank
         << ") — ranks must be acquired in ascending order";
      report.summary = os.str();
      report.second_stack = held_stack_string(cls);
      fire(std::move(report));
      push_held(cls, instance);
      return;
    }
  }

  // Lock-order graph: record holder -> cls edges and check each new edge
  // for a cycle. A report is produced at most once per closing edge.
  if (t_held.size > 0) {
    LockOrderReport report;
    bool report_ready = false;
    {
      std::lock_guard<std::mutex> lock(registry().mutex);  // NOLINT(raw-mutex)
      for (int i = 0; i < t_held.size; ++i) {
        LockClass* holder = const_cast<LockClass*>(t_held.items[i].cls);
        auto [it, inserted] =
            holder->succ.try_emplace(cls, Edge{held_stack_string(cls), false});
        if (!inserted || it->second.reported || report_ready) continue;
        // New edge holder -> cls: a cycle exists iff cls already reaches
        // holder. (Self-edges — same class, distinct instances — fall out
        // naturally: cls trivially reaches itself via the new edge's
        // holder == cls, and the report tells the developer to give the
        // two roles distinct names if the nesting is intentional.)
        std::vector<const LockClass*> path =
            holder == cls ? std::vector<const LockClass*>{cls}
                          : find_path(cls, holder);
        if (path.empty()) continue;
        it->second.reported = true;
        std::ostringstream os;
        os << "cycle ";
        for (const LockClass* node : path) os << node->name << " -> ";
        os << cls->name;
        if (holder == cls) {
          os << " (same-class nesting of two '" << cls->name
             << "' instances — name the two roles distinctly if intended)";
        }
        report.kind = "cycle";
        report.summary = os.str();
        // The stack stored on the first edge of the return path is the
        // other direction's acquisition context ("the first hold-stack");
        // for an ABBA pair this is exactly where B -> A was established.
        const auto back = path.front()->succ.find(
            path.size() > 1 ? path[1] : cls);
        if (back != path.front()->succ.end()) {
          report.first_stack = back->second.stack;
        }
        report.second_stack = it->second.stack;
        report_ready = true;
      }
    }
    if (report_ready) fire(std::move(report));
  }

  push_held(cls, instance);
}

void note_try_acquire(const LockClass* cls, const void* instance) {
  push_held(cls, instance);
}

void note_release(const LockClass* cls, const void* instance) {
  for (int i = t_held.size - 1; i >= 0; --i) {
    if (t_held.items[i].instance != instance) continue;
    for (int j = i + 1; j < t_held.size; ++j) {
      t_held.items[j - 1] = t_held.items[j];
    }
    --t_held.size;
    return;
  }
  if (t_held.overflow > 0) {
    --t_held.overflow;  // one of the untracked past-capacity acquisitions
    return;
  }
  // Releasing a mutex this thread never noted: a lock()/unlock() pair
  // split across threads. std::mutex makes that UB; say so loudly.
  LockOrderReport report;
  report.kind = "recursive";
  report.summary = "mutex '" + cls->name +
                   "' released by a thread that never acquired it";
  fire(std::move(report));
}

void set_lock_report_handler(
    std::function<void(const LockOrderReport&)> handler) {
  std::lock_guard<std::mutex> lock(registry().mutex);  // NOLINT(raw-mutex)
  registry().handler = std::move(handler);
}

std::uint64_t lock_report_count() noexcept {
  std::lock_guard<std::mutex> lock(registry().mutex);  // NOLINT(raw-mutex)
  return registry().report_count;
}

std::vector<std::pair<std::string, std::string>> lock_order_edges() {
  std::vector<std::pair<std::string, std::string>> out;
  std::lock_guard<std::mutex> lock(registry().mutex);  // NOLINT(raw-mutex)
  for (const auto& [name, cls] : registry().classes) {
    for (const auto& [next, edge] : cls->succ) {
      out.emplace_back(name, next->name);
    }
  }
  return out;
}

bool lock_order_edge_seen(const std::string& holder,
                          const std::string& acquired) {
  std::lock_guard<std::mutex> lock(registry().mutex);  // NOLINT(raw-mutex)
  auto it = registry().classes.find(holder);
  if (it == registry().classes.end()) return false;
  for (const auto& [next, edge] : it->second->succ) {
    if (next->name == acquired) return true;
  }
  return false;
}

void reset_lock_graph_for_test() {
  std::lock_guard<std::mutex> lock(registry().mutex);  // NOLINT(raw-mutex)
  for (auto& [name, cls] : registry().classes) cls->succ.clear();
  registry().report_count = 0;
}

ScopedLockReportCapture::ScopedLockReportCapture() {
  reset_lock_graph_for_test();
  set_lock_report_handler(
      [this](const LockOrderReport& report) { reports_.push_back(report); });
}

ScopedLockReportCapture::~ScopedLockReportCapture() {
  set_lock_report_handler(nullptr);
  reset_lock_graph_for_test();
}

}  // namespace menos::check
