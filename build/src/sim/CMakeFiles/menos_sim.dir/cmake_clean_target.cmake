file(REMOVE_RECURSE
  "libmenos_sim.a"
)
