# Empty compiler generated dependencies file for ablation_cut_depth.
# This may be replaced when dependencies are built.
