#include "core/parameter_store.h"

#include <algorithm>

namespace menos::core {

int block_gpu_index(int block, int n_layers, int gpu_count) {
  MENOS_CHECK_MSG(block >= 0 && block < n_layers, "block index out of range");
  MENOS_CHECK_MSG(gpu_count >= 1, "need at least one GPU");
  return static_cast<int>(static_cast<std::int64_t>(block) * gpu_count /
                          n_layers);
}

namespace {

std::vector<gpusim::Device*> uniform_placement(
    const nn::TransformerConfig& config, gpusim::Device& device) {
  return std::vector<gpusim::Device*>(
      static_cast<std::size_t>(config.n_layers), &device);
}

std::vector<gpusim::Device*> split_placement(
    const nn::TransformerConfig& config, gpusim::DeviceManager& devices) {
  std::vector<gpusim::Device*> placement;
  placement.reserve(static_cast<std::size_t>(config.n_layers));
  for (int i = 0; i < config.n_layers; ++i) {
    placement.push_back(
        &devices.gpu(block_gpu_index(i, config.n_layers, devices.gpu_count())));
  }
  return placement;
}

}  // namespace

ParameterStore::ParameterStore(const nn::TransformerConfig& config,
                               gpusim::Device& device, std::uint64_t base_seed)
    : ParameterStore(config, uniform_placement(config, device), base_seed) {}

ParameterStore::ParameterStore(const nn::TransformerConfig& config,
                               gpusim::DeviceManager& devices,
                               std::uint64_t base_seed)
    : ParameterStore(config, split_placement(config, devices), base_seed) {}

gpusim::Device& ParameterStore::device_for_block(int block) const {
  MENOS_CHECK_MSG(block >= 0 &&
                      block < static_cast<int>(placement_.size()),
                  "block index out of range");
  return *placement_[static_cast<std::size_t>(block)];
}

ParameterStore::ParameterStore(const nn::TransformerConfig& config,
                               std::vector<gpusim::Device*> placement,
                               std::uint64_t base_seed)
    : config_(config), placement_(std::move(placement)) {
  config.validate();
  nn::FreshInit init(base_seed);
  nn::AdapterSpec no_adapter;
  no_adapter.type = nn::AdapterType::None;
  util::Rng unused_rng(0);
  // Build each block once to enumerate and initialize its parameters, then
  // keep only the tensors. Structures are throwaway; storage is shared.
  for (int i = 0; i < config.n_layers; ++i) {
    nn::TransformerBlock block("block" + std::to_string(i), config,
                               no_adapter, init,
                               *placement_[static_cast<std::size_t>(i)],
                               unused_rng);
    for (const nn::Parameter& p : block.parameters()) {
      MENOS_CHECK_MSG(!p.trainable(),
                      "base parameter '" << p.name << "' must be frozen");
      table_.emplace(p.name, p.value);
      bytes_ += p.value.bytes();
    }
  }
}

std::vector<nn::Parameter> ParameterStore::parameters() const {
  std::vector<nn::Parameter> out;
  out.reserve(table_.size());
  for (const auto& [name, value] : table_) {
    out.push_back(nn::Parameter{name, value});
  }
  std::sort(out.begin(), out.end(),
            [](const nn::Parameter& a, const nn::Parameter& b) {
              return a.name < b.name;
            });
  return out;
}

bool same_model(const nn::TransformerConfig& a,
                const nn::TransformerConfig& b) {
  return a.family == b.family && a.vocab_size == b.vocab_size &&
         a.dim == b.dim && a.n_layers == b.n_layers &&
         a.n_heads == b.n_heads && a.n_kv_heads == b.n_kv_heads &&
         a.ffn_hidden == b.ffn_hidden && a.max_seq == b.max_seq;
}

}  // namespace menos::core
