// Multi-head causal self-attention with optional LoRA on q/v (the paper's
// fine-tuning target, following the PEFT default it cites).
#pragma once

#include <memory>

#include "nn/adapters.h"

namespace menos::nn {

class CausalSelfAttention final : public Module {
 public:
  /// `use_bias` distinguishes the OPT family (biased projections) from the
  /// Llama family (bias-free). `n_kv_heads` < n_heads enables grouped-query
  /// attention (Llama-2-70B-style): keys/values are projected to fewer
  /// heads and shared by query groups, shrinking the k/v projections.
  /// n_kv_heads == n_heads (the default when 0) is standard MHA.
  CausalSelfAttention(const std::string& name, tensor::Index dim,
                      int n_heads, bool use_bias, const AdapterSpec& adapter,
                      ParameterSource& source, gpusim::Device& device,
                      util::Rng& adapter_rng, int n_kv_heads = 0);

  /// x: [B, T, C] -> [B, T, C] with causal masking.
  tensor::Tensor forward(const tensor::Tensor& x);

  int kv_heads() const noexcept { return n_kv_heads_; }

 private:
  std::unique_ptr<Linear> make_projection(const std::string& name,
                                          tensor::Index in, tensor::Index out,
                                          bool use_bias, bool lora_target,
                                          const AdapterSpec& adapter,
                                          ParameterSource& source,
                                          gpusim::Device& device,
                                          util::Rng& adapter_rng);

  tensor::Index dim_;
  int n_heads_;
  int n_kv_heads_;
  tensor::Index head_dim_;
  std::unique_ptr<Linear> q_;
  std::unique_ptr<Linear> k_;
  std::unique_ptr<Linear> v_;
  std::unique_ptr<Linear> o_;
};

}  // namespace menos::nn
