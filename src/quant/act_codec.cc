#include "quant/act_codec.h"

#include <algorithm>
#include <cmath>

namespace menos::quant {

void int8_rowwise_encode(const float* data, std::size_t rows,
                         std::size_t cols, std::vector<float>& scales,
                         std::vector<std::uint8_t>& codes) {
  scales.resize(rows);
  codes.resize(rows * cols);
  for (std::size_t r = 0; r < rows; ++r) {
    const float* row = data + r * cols;
    float absmax = 0.0f;
    for (std::size_t c = 0; c < cols; ++c) {
      absmax = std::max(absmax, std::fabs(row[c]));
    }
    const float scale = absmax > 0.0f ? absmax / 127.0f : 1.0f;
    scales[r] = scale;
    for (std::size_t c = 0; c < cols; ++c) {
      const float q = std::round(row[c] / scale);
      const auto code =
          static_cast<std::int8_t>(std::max(-127.0f, std::min(127.0f, q)));
      codes[r * cols + c] = static_cast<std::uint8_t>(code);
    }
  }
}

void int8_rowwise_decode(const float* scales, const std::uint8_t* codes,
                         std::size_t rows, std::size_t cols, float* out) {
  for (std::size_t r = 0; r < rows; ++r) {
    const float scale = scales[r];
    for (std::size_t c = 0; c < cols; ++c) {
      out[r * cols + c] =
          static_cast<float>(static_cast<std::int8_t>(codes[r * cols + c])) *
          scale;
    }
  }
}

}  // namespace menos::quant
