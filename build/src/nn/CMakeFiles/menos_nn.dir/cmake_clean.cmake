file(REMOVE_RECURSE
  "CMakeFiles/menos_nn.dir/adapters.cc.o"
  "CMakeFiles/menos_nn.dir/adapters.cc.o.d"
  "CMakeFiles/menos_nn.dir/attention.cc.o"
  "CMakeFiles/menos_nn.dir/attention.cc.o.d"
  "CMakeFiles/menos_nn.dir/layers.cc.o"
  "CMakeFiles/menos_nn.dir/layers.cc.o.d"
  "CMakeFiles/menos_nn.dir/module.cc.o"
  "CMakeFiles/menos_nn.dir/module.cc.o.d"
  "CMakeFiles/menos_nn.dir/transformer.cc.o"
  "CMakeFiles/menos_nn.dir/transformer.cc.o.d"
  "libmenos_nn.a"
  "libmenos_nn.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/menos_nn.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
